// Package scan implements SCAGuard's repository scan engine: the hot
// path of the deployment layer (paper Section III-B3), where a target's
// CST-BBS is compared against every attack behavior model in the
// repository. The paper's time-cost table shows this similarity
// comparison dominating end-to-end detection latency, so the engine
// attacks it on three axes (design rationale and measured numbers in
// docs/PERFORMANCE.md):
//
//   - Parallelism. Per-entry scoring fans out across a worker pool
//     (Config.Workers, default GOMAXPROCS), for one target (Scan) or
//     many (ScanBatch). Results are collected positionally, so the
//     output is deterministic regardless of scheduling.
//   - Memoization. The normalized-instruction Levenshtein term is the
//     dominant cost inside every DTW cell, and the same basic blocks
//     recur across repository entries, scans and targets (crypto loops,
//     probe loops). A DistCache shared safely across workers computes
//     each distinct block pair once.
//   - Early abandoning (Config.Prune). A cheap O(n+m)-style lower bound
//     (similarity.LowerBound) skips entries that provably cannot beat
//     the best score found so far, and the banded DTW itself abandons
//     row-wise (dtw.DistanceAbandon) once every cell exceeds the bound
//     implied by the running best. Pruned entries report an upper-bound
//     score and Pruned=true; the best match is always computed exactly,
//     so classification decisions and explanations are unaffected.
//
// In exact mode (Prune=false, the default) the engine is bit-identical
// to the serial reference path (ScanSerial): same comparisons, same
// float operations, same scores. The differential tests in this package
// and in internal/detect enforce that equivalence on real corpora.
//
// An Engine is immutable after New and safe for concurrent use; it
// snapshots the model slice it is given, so the caller may keep
// appending to a repository while older engines scan.
package scan

import (
	"context"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/dtw"
	"repro/internal/faultinject"
	"repro/internal/index"
	"repro/internal/model"
	"repro/internal/panicsafe"
	"repro/internal/similarity"
	"repro/internal/telemetry"
)

// Config tunes a scan engine.
type Config struct {
	// Workers is the worker-pool size; <= 0 selects GOMAXPROCS.
	Workers int
	// Prune enables early abandoning. The best match (and therefore the
	// classification) stays exact; non-best entries may be skipped once
	// they provably cannot win, reporting an upper-bound score with
	// Pruned=true. Which entries get pruned depends on scheduling, so
	// full match lists are only reproducible with Prune=false.
	Prune bool
	// Cascade layers the full lower-bound cascade over Prune: entries
	// are ordered by the O(1) aggregate bound (similarity.LowerBoundKim)
	// and escalated lazily through the O(n+m) envelope bound
	// (similarity.LowerBoundKeogh) and the exact per-row bound
	// (similarity.LowerBound) only while they survive — most entries of
	// a large repository are pruned before any per-row work. Every tier
	// is prune-only and conservative, so the invariants of Prune hold
	// unchanged: best match, prediction and explanation stay exact.
	// Ignored when Prune is false.
	Cascade bool
	// Index enables the medoid-prototype repository index
	// (internal/index): entries are clustered at engine build time via
	// the pairwise-distance MST, each scan scores the cluster
	// prototypes first and visits clusters in ascending prototype-
	// distance order, and entries of clusters that provably (per-entry
	// cascade certificates) cannot beat the running cutoff are skipped
	// without per-row DTW work — sub-linear scans on large
	// repositories. The best match, prediction and explanation stay
	// exact, exactly as under Prune; which entries report Pruned=true
	// remains schedule-dependent. Indexed scans always use the full
	// lower-bound certificate ladder, so Cascade is implied and its
	// flag has no additional effect. Ignored when Prune is false; an
	// injected index-build fault degrades to the flat scan path. See
	// docs/INDEXING.md.
	Index bool
	// IndexClusters overrides the index's cluster count; <= 0 selects
	// the ~sqrt(N)/2 default (index.DefaultClusters).
	IndexClusters int
	// IndexMaxClusters, when > 0, enables the approximate recall-
	// trading mode: per target at most this many clusters (in
	// ascending prototype-distance order) are examined normally, and
	// the members of every later cluster are skipped on the triangle-
	// inequality estimate alone — which the normalized DTW distance
	// does not guarantee, so the true best match may be missed. Exact
	// mode (the default, 0) never trusts that estimate for a skip.
	IndexMaxClusters int
	// IndexFrom optionally seeds index construction from a previous
	// engine's index when the new model slice is an append-only
	// extension of the one that index covers (the caller must verify
	// the prefix matches): appended entries join their nearest medoid
	// (index.Extend) instead of paying the full O(n²) rebuild. Ignored
	// when extension is impossible.
	IndexFrom *index.Index
	// Sim is the similarity configuration shared by every comparison.
	Sim similarity.Options
	// Cache optionally shares a Levenshtein memo across engines (e.g.
	// across detectors built over one repository); nil creates a
	// private cache.
	Cache *DistCache
	// Telemetry optionally records scan counters (comparisons resolved
	// exactly vs pruned, lower-bound cutoff hits) and per-scan latency.
	// nil disables instrumentation at zero cost.
	Telemetry *telemetry.Collector
}

// Match is one repository comparison result.
type Match struct {
	// Index identifies the repository entry (position in the model
	// slice the engine was built from).
	Index int
	// Score is the similarity score 1/(D+1). For pruned entries it is
	// an upper bound on the true score, derived from the lower bound
	// that justified skipping the full comparison.
	Score float64
	// Pruned marks entries skipped by early abandoning.
	Pruned bool
}

// CloneMatches returns an independent copy of a match slice (nil in,
// nil out). The verdict result cache (internal/vcache) hands each
// caller its own copy of a memoized scan outcome, so no caller can
// mutate the cached slice out from under the others.
func CloneMatches(ms []Match) []Match {
	if ms == nil {
		return nil
	}
	return append([]Match(nil), ms...)
}

// Engine scans targets against a fixed set of repository models.
type Engine struct {
	cfg    Config
	sim    similarity.Options // cfg.Sim with defaults applied
	models []*model.CSTBBS
	profs  []*similarity.Profile
	ids    [][]uint32
	flats  []*model.FlatBBS // flattened symbol form; nil entries fall back to strings
	tab    *model.SymTab
	cache  *DistCache
	idx    *index.Index // nil unless Config.Index built one

	// scratches recycles worker scratches across scans. The win is not
	// the buffer reuse (those are small) but the worker-local pair memo
	// riding inside each scratch: it stays warm across scans of a long-
	// lived engine, so steady-state DTW cells never touch the shared
	// cache's lock.
	scratches sync.Pool
}

// getScratch hands out a pooled worker scratch (allocating one for a
// cold pool); putScratch returns it after clearing the per-batch
// bindings so pooled scratches never pin a finished batch's targets.
func (e *Engine) getScratch() *scratch {
	if s, ok := e.scratches.Get().(*scratch); ok {
		return s
	}
	return e.newScratch()
}

func (e *Engine) putScratch(s *scratch) {
	s.t, s.eb, s.eids, s.eprof, s.eflat = nil, nil, nil, nil, nil
	s.runK, s.runFn = 0, nil
	e.scratches.Put(s)
}

// New builds an engine over a snapshot of models. Construction interns
// every repository block into the cache, flattens every model into the
// contiguous symbol form the comparison kernel runs on, and precomputes
// the per-entry profiles the lower bounds need; it is cheap (linear in
// total blocks) next to a single repository scan.
func New(models []*model.CSTBBS, cfg Config) *Engine {
	e := &Engine{
		cfg:    cfg,
		sim:    cfg.Sim.WithDefaults(),
		models: append([]*model.CSTBBS(nil), models...),
		tab:    model.NewSymTab(),
		cache:  cfg.Cache,
	}
	if e.cache == nil {
		e.cache = NewDistCache()
	}
	e.profs = make([]*similarity.Profile, len(e.models))
	e.ids = make([][]uint32, len(e.models))
	e.flats = make([]*model.FlatBBS, len(e.models))
	for i, m := range e.models {
		e.profs[i] = similarity.NewProfile(m)
		e.ids[i] = e.internBlocks(m)
		e.flats[i], _ = model.FlattenBBS(m, e.tab)
	}
	if cfg.Index && cfg.Prune {
		e.idx = e.buildIndex()
		if e.idx != nil {
			cfg.Telemetry.RegisterGauges("index", e.idx.Gauges)
		}
	}
	return e
}

// Index returns the engine's repository index (nil when indexing is
// off, or when an injected build fault degraded the engine to flat
// scanning). Detectors hand it back via Config.IndexFrom to extend
// incrementally across repository version bumps.
func (e *Engine) Index() *index.Index { return e.idx }

// Len returns the number of repository models scanned per target.
func (e *Engine) Len() int { return len(e.models) }

// Cache returns the engine's Levenshtein memo (for sharing and stats).
func (e *Engine) Cache() *DistCache { return e.cache }

func (e *Engine) internBlocks(m *model.CSTBBS) []uint32 {
	ids := make([]uint32, m.Len())
	for i, c := range m.Seq {
		ids[i] = e.cache.intern(c.NormInsns)
	}
	return ids
}

// target carries the per-scan precomputation for one CST-BBS.
type target struct {
	bbs  *model.CSTBBS
	prof *similarity.Profile
	ids  []uint32
	flat *model.FlatBBS // nil when flattening failed (symbol table full)
}

func (e *Engine) newTarget(bbs *model.CSTBBS) *target {
	t := &target{bbs: bbs, prof: similarity.NewProfile(bbs), ids: e.internBlocks(bbs)}
	t.flat, _ = model.FlattenBBS(bbs, e.tab)
	return t
}

// Scan scores one target against every repository model. The result is
// ordered by entry index. In exact mode the scores are bit-identical to
// ScanSerial's.
func (e *Engine) Scan(bbs *model.CSTBBS) []Match {
	return e.ScanBatch([]*model.CSTBBS{bbs})[0]
}

// ScanCtx is Scan with cooperative cancellation: workers observe ctx
// between work items, so a cancelled or expired context returns
// promptly with its error and the partial matches are discarded. A
// panic while scoring is recovered and returned as a *panicsafe.
// PanicError instead of crashing the process.
func (e *Engine) ScanCtx(ctx context.Context, bbs *model.CSTBBS) ([]Match, error) {
	rs, err := e.ScanBatchCtx(ctx, []*model.CSTBBS{bbs})
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// ScanCutoffCtx is ScanCtx with an externally owned pruning cutoff:
// instead of a private per-target best, the scan consults and updates
// cut, so several engines scanning the same target concurrently — the
// shards of a partitioned repository — share one global best and prune
// against each other's matches (the cutoff broadcast, internal/shard).
// A cut that already carries a bound (from another shard, or from a
// remote coordinator's broadcast) tightens pruning from the first
// comparison. With Prune off the cutoff is ignored and the scan is
// bit-identical to ScanCtx.
func (e *Engine) ScanCutoffCtx(ctx context.Context, bbs *model.CSTBBS, cut *Cutoff) ([]Match, error) {
	rs, err := e.scanBatchCtx(ctx, []*model.CSTBBS{bbs}, []*Cutoff{cut})
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// ScanSerial is the reference implementation the engine is verified
// against: the pre-engine serial loop calling similarity.Score per
// entry, with no parallelism, memoization or pruning.
func (e *Engine) ScanSerial(bbs *model.CSTBBS) []Match {
	out := make([]Match, len(e.models))
	for i, m := range e.models {
		out[i] = Match{Index: i, Score: similarity.Score(bbs, m, e.sim)}
	}
	return out
}

// ScanBatch scores many targets in one worker-pool pass, sharing the
// pool across all (target, entry) pairs so small targets cannot strand
// workers. results[t][i] is target t against entry i. A panic while
// scoring re-raises in the calling goroutine (the loud contract of the
// non-context API); use ScanBatchCtx to receive it as an error instead.
func (e *Engine) ScanBatch(targets []*model.CSTBBS) [][]Match {
	rs, err := e.ScanBatchCtx(context.Background(), targets)
	if err != nil {
		// Background contexts never cancel, so the error is a recovered
		// worker panic (re-raised with its original value) or an
		// injected test fault; either way this API has no error path.
		_ = panicsafe.Repanic(err)
		panic(err)
	}
	return rs
}

// ScanBatchCtx is ScanBatch with cooperative cancellation and panic
// isolation. Workers observe ctx between (target, entry) work items —
// the items are microsecond-scale, so cancellation and deadline expiry
// return promptly — and every scoring runs under panic recovery: the
// first recovered panic (or injected worker fault) stops the batch and
// comes back as the error, counted under telemetry's panics_recovered.
// On a non-nil error the returned matches are incomplete and must be
// discarded.
func (e *Engine) ScanBatchCtx(ctx context.Context, targets []*model.CSTBBS) ([][]Match, error) {
	return e.scanBatchCtx(ctx, targets, nil)
}

// scanBatchCtx is the scan core. cuts, when non-nil, supplies the
// per-target pruning cutoffs (ScanCutoffCtx's shared cells); nil gives
// every target a private one.
func (e *Engine) scanBatchCtx(ctx context.Context, targets []*model.CSTBBS, cuts []*Cutoff) ([][]Match, error) {
	tel := e.cfg.Telemetry
	scanStart := tel.Now()
	defer tel.ObserveSince(telemetry.StageScan, scanStart)
	tel.Add(telemetry.ScanTargets, uint64(len(targets)))
	nE := len(e.models)
	indexed := e.indexed()
	results := make([][]Match, len(targets))
	ts := make([]*target, len(targets))
	orders := make([][]int, len(targets))
	bounds := make([][]float64, len(targets))
	kims := make([][]float64, len(targets))
	if cuts == nil {
		cuts = make([]*Cutoff, len(targets))
	}
	for ti, bbs := range targets {
		if err := ctx.Err(); err != nil {
			return results, err
		}
		results[ti] = make([]Match, nE)
		ts[ti] = e.newTarget(bbs)
		if cuts[ti] == nil {
			cuts[ti] = NewCutoff()
		}
		if e.cfg.Prune && !indexed {
			// Cheap lower bounds, and a most-promising-first order so
			// the shared best tightens as early as possible. Without the
			// cascade the ordering bound is the exact per-row bound
			// (O((n+m)·w) per entry); with it, the O(1) Kim tier plus the
			// O(n+m) Keogh envelope tier — a ~w-times cheaper pass whose
			// ordering is nearly as sharp, leaving the per-row tier to
			// run lazily in scoreOne for the few entries within striking
			// distance of the cutoff.
			lbs := make([]float64, nE)
			if e.cfg.Cascade {
				kim := make([]float64, nE)
				var keo similarity.KeoghScratch
				for ei := range e.models {
					kim[ei] = similarity.LowerBoundKim(ts[ti].prof, e.profs[ei], e.sim)
					lbs[ei] = kim[ei]
					if b := similarity.LowerBoundKeogh(ts[ti].prof, e.profs[ei], e.sim, &keo); b > lbs[ei] {
						lbs[ei] = b
					}
				}
				kims[ti] = kim
			} else {
				for ei := range e.models {
					lbs[ei] = similarity.LowerBound(ts[ti].prof, e.profs[ei], e.sim)
				}
			}
			order := make([]int, nE)
			for i := range order {
				order[i] = i
			}
			sort.SliceStable(order, func(a, b int) bool { return lbs[order[a]] < lbs[order[b]] })
			bounds[ti], orders[ti] = lbs, order
		}
	}
	// In indexed mode one work item is a whole target: the cluster
	// descent is inherently sequential (the prototype pass must finish
	// before the gates mean anything), so parallelism is across
	// targets, not within one. See docs/INDEXING.md.
	total := len(targets) * nE
	if indexed {
		total = len(targets)
	}
	if total == 0 {
		return results, ctx.Err()
	}
	entryAt := func(ti, k int) int {
		if orders[ti] != nil {
			return orders[ti][k]
		}
		return k
	}
	run := func(k int, s *scratch) error {
		if err := faultinject.Fire(faultinject.ScanWorker, ""); err != nil {
			return err
		}
		if indexed {
			e.scanIndexed(ts[k], results[k], cuts[k], s)
			return nil
		}
		ti, ei := k/nE, entryAt(k/nE, k%nE)
		results[ti][ei] = e.scoreOne(ts[ti], ei, bounds[ti], kims[ti], cuts[ti], s)
		return nil
	}
	// Each worker owns one scratch (DTW rows, Levenshtein rows, Keogh
	// deques, the bound dist closure, the pair memo and the panicsafe
	// trampoline), drawn from the engine pool so the per-item loop below
	// allocates nothing once warm and the memo survives across batches.
	newWorkerScratch := func() *scratch {
		s := e.getScratch()
		s.runFn = func() error { return run(s.runK, s) }
		return s
	}
	// First failure (recovered panic or injected fault) stops the
	// batch: stop flags the claim loops, failOnce keeps the error.
	var (
		stop     atomic.Bool
		failOnce sync.Once
		failErr  error
	)
	runSafe := func(k int, s *scratch) {
		s.runK = k
		err := panicsafe.Do(s.runFn)
		if err == nil {
			return
		}
		if _, ok := panicsafe.AsPanic(err); ok {
			tel.Inc(telemetry.PanicsRecovered)
		}
		failOnce.Do(func() { failErr = err })
		stop.Store(true)
	}
	workers := e.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}
	if workers <= 1 {
		s := newWorkerScratch()
		defer e.putScratch(s)
		for k := 0; k < total; k++ {
			if stop.Load() {
				break
			}
			if err := ctx.Err(); err != nil {
				return results, err
			}
			runSafe(k, s)
		}
		return results, failErr
	}
	var next int64 = -1
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			s := newWorkerScratch()
			defer e.putScratch(s)
			for {
				if stop.Load() || ctx.Err() != nil {
					return
				}
				k := atomic.AddInt64(&next, 1)
				if k >= int64(total) {
					return
				}
				runSafe(int(k), s)
			}
		}()
	}
	wg.Wait()
	if failErr != nil {
		return results, failErr
	}
	return results, ctx.Err()
}

// cascadeEscalateFrac gates the lazy tier-3 escalation: the exact
// per-row bound (similarity.LowerBound) runs only for entries whose
// tier-1/2 bound already reaches this fraction of the cutoff. A bound
// far below the cutoff is almost never bridged by the modest tightening
// tier 3 adds, so spending O((n+m)·w) on it costs more than the banded
// DTW rows it would save — early abandoning catches those entries a few
// rows in anyway. The gate is a pure performance heuristic: it decides
// whether an extra prune-only bound is consulted, never how an entry is
// scored, so verdicts are unaffected by its value.
const cascadeEscalateFrac = 0.75

// scoreOne scores a single (target, entry) pair, consulting and
// updating the target's shared best distance when pruning. With the
// cascade enabled, lbs carries the running maximum of the tier-1/tier-2
// bounds (computed at order-build time; kims the tier-1 bound alone,
// for attribution) and the tier-3 per-row bound escalates lazily behind
// cascadeEscalateFrac. Every tier is a true lower bound and the code
// keeps their running maximum, so each tier stays prune-only and the
// reported pruned score stays a true upper bound.
func (e *Engine) scoreOne(t *target, ei int, lbs, kims []float64, cut *Cutoff, s *scratch) Match {
	tel := e.cfg.Telemetry
	if !e.cfg.Prune {
		d, _ := e.compare(t, ei, math.Inf(1), s)
		tel.Inc(telemetry.ScanEntriesExact)
		return Match{Index: ei, Score: dtw.Similarity(d)}
	}
	cutoff := pruneCutoff(cut.Best())
	bound := lbs[ei]
	if bound > cutoff {
		switch {
		case !e.cfg.Cascade:
			tel.Inc(telemetry.ScanEntriesLowerBoundSkipped)
		case kims[ei] > cutoff:
			tel.Inc(telemetry.ScanEntriesKimSkipped)
		default:
			tel.Inc(telemetry.ScanEntriesKeoghSkipped)
		}
		return Match{Index: ei, Score: dtw.Similarity(bound), Pruned: true}
	}
	if e.cfg.Cascade && bound > cutoff*cascadeEscalateFrac {
		if b := similarity.LowerBound(t.prof, e.profs[ei], e.sim); b > bound {
			bound = b
		}
		if bound > cutoff {
			tel.Inc(telemetry.ScanEntriesLowerBoundSkipped)
			return Match{Index: ei, Score: dtw.Similarity(bound), Pruned: true}
		}
	}
	d, abandoned := e.compare(t, ei, cutoff, s)
	if abandoned {
		tel.Inc(telemetry.ScanEntriesAbandoned)
		return Match{Index: ei, Score: dtw.Similarity(d), Pruned: true}
	}
	cut.Update(d)
	tel.Inc(telemetry.ScanEntriesExact)
	return Match{Index: ei, Score: dtw.Similarity(d)}
}

// pruneCutoff converts the best distance seen so far into the cutoff an
// entry must provably exceed before it may be skipped. The margin keeps
// pruning conservative under floating-point rounding: an entry whose
// true distance ties the best is never pruned, so the exact winner (and
// deterministic index tie-breaking) is preserved.
func pruneCutoff(best float64) float64 {
	if math.IsInf(best, 1) {
		return best
	}
	return best + best*1e-9 + 1e-15
}

