package scan_test

// BenchmarkIndexedScan measures what the repository index buys on the
// workload it exists for: the variant re-scoring sweep — mutated
// variants of known attacks classified against a large variant corpus
// (500 modeled attack variants, internal/detect.BuildVariantRepository),
// the paper's E2 setup and the hot path the sharded service runs. Each
// iteration scans one in-corpus variant, rotating through a spread of
// targets across all families so no single lucky entry dominates; a
// near-exact match always exists, the cutoff collapses early, and the
// kernels separate on what they do with the other ~499 entries: Flat
// pays an O(len·window) lower bound per entry upfront, Cascade
// escalates per-entry bounds, Indexed abandons non-matching prototypes
// and dismisses members on O(1) certificates. One worker, so the
// numbers compare scan kernels rather than schedulers. The engines —
// including the indexed engine's O(n²) index construction — are built
// once outside the timed loops; scripts/bench-check.sh enforces the
// pruned/indexed ratio and writes BENCH_index.json.

import (
	"sync"
	"testing"

	"repro/internal/detect"
	"repro/internal/model"
	"repro/internal/scan"
)

var indexBench struct {
	once    sync.Once
	err     error
	models  []*model.CSTBBS
	targets []*model.CSTBBS
	flat    *scan.Engine
	cascade *scan.Engine
	indexed *scan.Engine
}

func indexBenchSetup(b *testing.B) {
	indexBench.once.Do(func() {
		repo, err := detect.BuildVariantRepository(detect.CorpusConfig{PerFamily: 125, Seed: 1})
		if err != nil {
			indexBench.err = err
			return
		}
		for _, e := range repo.Entries {
			indexBench.models = append(indexBench.models, e.BBS)
		}
		// Sweep targets: every 31st corpus variant (17 targets spanning
		// all four families). Re-scoring a variant the repository already
		// holds is the index's hot case — shard rebalances, cache-cold
		// replicas, and fleets of clients submitting builds of the same
		// known attacks all scan targets with a near-exact match present.
		for i := 0; i < len(indexBench.models); i += 31 {
			indexBench.targets = append(indexBench.targets, indexBench.models[i])
		}

		indexBench.flat = scan.New(indexBench.models, scan.Config{Workers: 1, Prune: true})
		indexBench.cascade = scan.New(indexBench.models, scan.Config{Workers: 1, Prune: true, Cascade: true})
		indexBench.indexed = scan.New(indexBench.models, scan.Config{Workers: 1, Prune: true, Index: true})
	})
	if indexBench.err != nil {
		b.Fatal(indexBench.err)
	}
	if len(indexBench.models) < 500 {
		b.Fatalf("stress corpus holds %d models, want >= 500", len(indexBench.models))
	}
	if indexBench.indexed.Index() == nil {
		b.Fatal("indexed engine has no index")
	}
}

func BenchmarkIndexedScan(b *testing.B) {
	indexBenchSetup(b)
	run := func(eng *scan.Engine) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng.Scan(indexBench.targets[i%len(indexBench.targets)])
			}
		}
	}
	b.Run("Flat", run(indexBench.flat))
	b.Run("Cascade", run(indexBench.cascade))
	b.Run("Indexed", run(indexBench.indexed))
}
