package scan

import (
	"math"

	"repro/internal/dtw"
	"repro/internal/model"
	"repro/internal/similarity"
	"repro/internal/textdist"
)

// scratch is one scan worker's reusable state: the DTW rolling rows,
// the Levenshtein rows, the Keogh envelope deques and the one point-
// distance closure the DTW kernel calls. Everything a (target, entry)
// comparison needs beyond the memo cache lives here, so the warm scan
// path runs at zero allocations per comparison — pinned by
// TestScanZeroAllocWarmPath. A scratch belongs to exactly one worker
// goroutine at a time.
type scratch struct {
	dtw dtw.Scratch
	lev textdist.Scratch
	keo similarity.KeoghScratch

	// The current (target, entry) pair, rebound by compare before each
	// DTW. The dist closure below reads these fields instead of
	// capturing per-pair values, so no new closure is allocated per
	// comparison.
	t     *target
	eb    *model.CSTBBS
	eids  []uint32
	eprof *similarity.Profile
	eflat *model.FlatBBS

	dist dtw.DistFunc // built once per scratch by newScratch

	// Work-item trampoline: runK is the claimed item index and runFn
	// the prebuilt closure handed to panicsafe.Do, so the dispatch loop
	// allocates nothing per item either.
	runK  int
	runFn func() error
}

// newScratch builds a worker scratch bound to this engine: its dist
// closure serves D_IS from the shared cache — over the flattened symbol
// arrays when both sides flattened, over the original token strings
// otherwise — and mixes in the exact D_CSP term, mirroring
// similarity.DistanceOpts operation-for-operation.
func (e *Engine) newScratch() *scratch {
	s := &scratch{}
	s.dist = func(i, j int) float64 {
		var dis float64
		ia, ib := s.t.ids[i], s.eids[j]
		if ia != noID && ib != noID && s.t.flat != nil && s.eflat != nil {
			dis = e.cache.normalizedFlat(ia, s.t.flat.Block(i), ib, s.eflat.Block(j), &s.lev)
		} else {
			dis = e.cache.normalized(ia, s.t.bbs.Seq[i].NormInsns, ib, s.eb.Seq[j].NormInsns)
		}
		dcsp := s.t.prof.Deltas[i] - s.eprof.Deltas[j]
		if dcsp < 0 {
			dcsp = -dcsp
		}
		return e.sim.ISWeight*dis + e.sim.CSPWeight*dcsp
	}
	return s
}

// compare computes the normalized CST-BBS distance of target vs entry
// ei, mirroring similarity.BBSDistanceAbandon operation-for-operation
// (same float expressions, same DTW recurrence) but with the
// Levenshtein term served from the shared cache and every scratch
// buffer reused from s. A +Inf cutoff yields the exact distance; a
// finite cutoff may return (lower bound, true) instead.
func (e *Engine) compare(t *target, ei int, cutoff float64, s *scratch) (float64, bool) {
	eb := e.models[ei]
	n, m := t.bbs.Len(), eb.Len()
	switch {
	case n == 0 && m == 0:
		return 0, false
	case n == 0 || m == 0:
		return math.Inf(1), false
	}
	s.t, s.eb, s.eids, s.eprof, s.eflat = t, eb, e.ids[ei], e.profs[ei], e.flats[ei]
	rawCutoff := cutoff * float64(n+m-1)
	sum, pathLen, abandoned := dtw.DistanceAbandonScratch(n, m, s.dist, dtw.Options{Window: e.sim.Window}, rawCutoff, &s.dtw)
	if abandoned {
		return sum / float64(n+m-1), true
	}
	return sum / float64(pathLen), false
}
