package scan

import (
	"math"

	"repro/internal/dtw"
	"repro/internal/model"
	"repro/internal/similarity"
	"repro/internal/textdist"
)

// scratch is one scan worker's reusable state: the DTW rolling rows,
// the Levenshtein rows, the Keogh envelope deques and the one point-
// distance closure the DTW kernel calls. Everything a (target, entry)
// comparison needs beyond the memo cache lives here, so the warm scan
// path runs at zero allocations per comparison — pinned by
// TestScanZeroAllocWarmPath. A scratch belongs to exactly one worker
// goroutine at a time.
type scratch struct {
	dtw dtw.Scratch
	lev textdist.Scratch
	keo similarity.KeoghScratch

	// The current (target, entry) pair, rebound by compare before each
	// DTW. The dist closure below reads these fields instead of
	// capturing per-pair values, so no new closure is allocated per
	// comparison.
	t     *target
	eb    *model.CSTBBS
	eids  []uint32
	eprof *similarity.Profile
	eflat *model.FlatBBS

	dist dtw.DistFunc // built once per scratch by newScratch
	memo pairMemo     // worker-local L1 over the shared pair cache

	// Work-item trampoline: runK is the claimed item index and runFn
	// the prebuilt closure handed to panicsafe.Do, so the dispatch loop
	// allocates nothing per item either.
	runK  int
	runFn func() error

	// Indexed-scan working sets (scanIndexed): per-cluster Kim bounds,
	// exact prototype distances, the cluster visit order and a member
	// visit order. Sized once per scratch and reused across targets;
	// the indexed path is not part of the zero-alloc pin, these just
	// keep the steady state allocation-free.
	protoKim  []float64
	protoDist []float64
	protoOrd  []int
	memOrd    []int
}

// sizeIndex (re)sizes the indexed-scan working sets for k clusters.
func (s *scratch) sizeIndex(k int) {
	if cap(s.protoKim) < k {
		s.protoKim = make([]float64, k)
		s.protoDist = make([]float64, k)
		s.protoOrd = make([]int, k)
	}
	s.protoKim = s.protoKim[:k]
	s.protoDist = s.protoDist[:k]
	s.protoOrd = s.protoOrd[:k]
}

// newScratch builds a worker scratch bound to this engine: its dist
// closure serves D_IS from the worker-local pair memo backed by the
// shared cache — over the flattened symbol arrays when both sides
// flattened, over the original token strings otherwise — and mixes in
// the exact D_CSP term, mirroring similarity.DistanceOpts
// operation-for-operation.
func (e *Engine) newScratch() *scratch {
	s := &scratch{}
	s.dist = func(i, j int) float64 {
		var dis float64
		ia, ib := s.t.ids[i], s.eids[j]
		if ia != noID && ib != noID && s.t.flat != nil && s.eflat != nil {
			switch lo, hi := ia, ib; {
			case ia == ib:
				// Same interned block: dis stays 0.
			default:
				if lo > hi {
					lo, hi = hi, lo
				}
				k := uint64(lo)<<32 | uint64(hi)
				var ok bool
				if dis, ok = s.memo.get(k); !ok {
					dis = e.cache.normalizedFlat(ia, s.t.flat.Block(i), ib, s.eflat.Block(j), &s.lev)
					s.memo.put(k, dis)
				}
			}
		} else {
			dis = e.cache.normalized(ia, s.t.bbs.Seq[i].NormInsns, ib, s.eb.Seq[j].NormInsns)
		}
		dcsp := s.t.prof.Deltas[i] - s.eprof.Deltas[j]
		if dcsp < 0 {
			dcsp = -dcsp
		}
		return e.sim.ISWeight*dis + e.sim.CSPWeight*dcsp
	}
	return s
}

// pairMemo is a worker-local, lock-free read-through layer over the
// shared DistCache pair memo. The DTW inner loop touches the same few
// thousand interned block pairs over and over; answering them from an
// open-addressed table owned by one goroutine removes the RWMutex and
// hit-counter traffic from the hot cell path. Keys are the same
// order-normalized (lo<<32|hi) intern-id pairs the shared cache uses,
// so a value is a pure function of the key and the table never needs
// invalidation; it simply mirrors a slice of the shared cache. Slots
// store key+1 so the zero value marks an empty slot (a key of 2^64-1
// would collide, but that would require ia == ib, which is answered
// before the memo).
type pairMemo struct {
	keys []uint64
	vals []float64
	n    int
}

// pairMemoMaxSlots caps the per-worker table (2 MiB of slots). A full
// table stops inserting and keeps serving its existing entries; the
// shared cache remains the backing store for the long tail.
const pairMemoMaxSlots = 1 << 17

func (p *pairMemo) get(k uint64) (float64, bool) {
	if len(p.keys) == 0 {
		return 0, false
	}
	mask := uint64(len(p.keys) - 1)
	for i := pairMemoHash(k) & mask; ; i = (i + 1) & mask {
		stored := p.keys[i]
		if stored == 0 {
			return 0, false
		}
		if stored == k+1 {
			return p.vals[i], true
		}
	}
}

func (p *pairMemo) put(k uint64, v float64) {
	if len(p.keys) == 0 {
		p.keys = make([]uint64, 1<<10)
		p.vals = make([]float64, 1<<10)
	} else if p.n >= len(p.keys)-len(p.keys)/4 {
		if len(p.keys) >= pairMemoMaxSlots {
			return
		}
		p.grow()
	}
	mask := uint64(len(p.keys) - 1)
	for i := pairMemoHash(k) & mask; ; i = (i + 1) & mask {
		switch p.keys[i] {
		case 0:
			p.keys[i], p.vals[i] = k+1, v
			p.n++
			return
		case k + 1:
			return
		}
	}
}

func (p *pairMemo) grow() {
	oldK, oldV := p.keys, p.vals
	p.keys = make([]uint64, 2*len(oldK))
	p.vals = make([]float64, 2*len(oldK))
	mask := uint64(len(p.keys) - 1)
	for i, stored := range oldK {
		if stored == 0 {
			continue
		}
		for j := pairMemoHash(stored-1) & mask; ; j = (j + 1) & mask {
			if p.keys[j] == 0 {
				p.keys[j], p.vals[j] = stored, oldV[i]
				break
			}
		}
	}
}

// pairMemoHash is the splitmix64 finalizer: cheap, and enough mixing
// that sequential intern ids spread across the table.
func pairMemoHash(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	k ^= k >> 31
	return k
}

// compare computes the normalized CST-BBS distance of target vs entry
// ei, mirroring similarity.BBSDistanceAbandon operation-for-operation
// (same float expressions, same DTW recurrence) but with the
// Levenshtein term served from the shared cache and every scratch
// buffer reused from s. A +Inf cutoff yields the exact distance; a
// finite cutoff may return (lower bound, true) instead.
func (e *Engine) compare(t *target, ei int, cutoff float64, s *scratch) (float64, bool) {
	eb := e.models[ei]
	n, m := t.bbs.Len(), eb.Len()
	switch {
	case n == 0 && m == 0:
		return 0, false
	case n == 0 || m == 0:
		return math.Inf(1), false
	}
	s.t, s.eb, s.eids, s.eprof, s.eflat = t, eb, e.ids[ei], e.profs[ei], e.flats[ei]
	rawCutoff := cutoff * float64(n+m-1)
	sum, pathLen, abandoned := dtw.DistanceAbandonScratch(n, m, s.dist, dtw.Options{Window: e.sim.Window}, rawCutoff, &s.dtw)
	if abandoned {
		return sum / float64(n+m-1), true
	}
	return sum / float64(pathLen), false
}
