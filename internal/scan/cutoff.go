package scan

import (
	"math"
	"sync"
	"sync/atomic"
)

// Cutoff is the shared best-distance cell behind early abandoning: the
// lowest exact distance any comparison has produced so far, stored as
// atomic float bits. Within one engine scan it is the per-target "best
// so far" that pruning compares against; shared between concurrently
// scanning engines (internal/shard) it becomes the cross-shard cutoff
// broadcast — a shard that finds a strong match immediately tightens
// the bound every other shard prunes with, so early abandoning works
// across shard boundaries, not just within one engine.
//
// A Cutoff only ever decreases. All methods are safe for concurrent
// use; the zero value is not ready — use NewCutoff (best starts at
// +Inf, i.e. "no bound yet").
type Cutoff struct {
	bits atomic.Uint64

	mu sync.Mutex
	ch chan struct{} // closed and replaced on every improvement
}

// NewCutoff returns a cutoff with no bound (+Inf).
func NewCutoff() *Cutoff {
	c := &Cutoff{ch: make(chan struct{})}
	c.bits.Store(math.Float64bits(math.Inf(1)))
	return c
}

// Best returns the current best (lowest) distance, +Inf when no exact
// comparison has finished yet.
func (c *Cutoff) Best() float64 {
	return math.Float64frombits(c.bits.Load())
}

// Update lowers the best distance to d if d improves on it, waking any
// Changed waiters. It reports whether d was an improvement.
func (c *Cutoff) Update(d float64) bool {
	for {
		old := c.bits.Load()
		if math.Float64frombits(old) <= d {
			return false
		}
		if c.bits.CompareAndSwap(old, math.Float64bits(d)) {
			c.mu.Lock()
			close(c.ch)
			c.ch = make(chan struct{})
			c.mu.Unlock()
			return true
		}
	}
}

// Changed returns a channel closed at the next improvement. Broadcast
// forwarders (the remote-shard client) loop on it: read Changed, wait,
// read Best, push. A fresh channel is installed on every update, so
// each returned channel fires exactly once.
func (c *Cutoff) Changed() <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ch
}
