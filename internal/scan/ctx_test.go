package scan

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/model"
	"repro/internal/panicsafe"
	"repro/internal/telemetry"
)

// testModels draws a deterministic corpus of n non-empty models from
// the shared random-BBS vocabulary.
func testModels(t *testing.T, n int) []*model.CSTBBS {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(n)*31 + 7))
	out := make([]*model.CSTBBS, n)
	for i := range out {
		for {
			if b := randomBBS(rng, 8); b.Len() > 0 {
				out[i] = b
				break
			}
		}
	}
	return out
}

// TestScanBatchCtxBackgroundMatchesScanBatch: the context plumbing must
// not change a single score on the background-context fast path.
func TestScanBatchCtxBackgroundMatchesScanBatch(t *testing.T) {
	models := testModels(t, 6)
	targets := testModels(t, 3)
	for _, prune := range []bool{false, true} {
		e := New(models, Config{Workers: 4, Prune: prune})
		got, err := e.ScanBatchCtx(context.Background(), targets)
		if err != nil {
			t.Fatalf("prune=%v: %v", prune, err)
		}
		e2 := New(models, Config{Workers: 4, Prune: prune})
		want := e2.ScanBatch(targets)
		if !prune && !reflect.DeepEqual(got, want) {
			t.Errorf("prune=%v: ctx and non-ctx results differ", prune)
		}
		// Pruned runs are scheduling-dependent in which entries get
		// skipped; the best match must still agree.
		for ti := range got {
			if bi, bw := bestOf(got[ti]), bestOf(want[ti]); bi.Index != bw.Index || bi.Score != bw.Score {
				t.Errorf("prune=%v target %d: best %+v vs %+v", prune, ti, bi, bw)
			}
		}
	}
}

func bestOf(ms []Match) Match {
	best := ms[0]
	for _, m := range ms[1:] {
		if m.Score > best.Score || (m.Score == best.Score && m.Index < best.Index) {
			best = m
		}
	}
	return best
}

func TestScanCtxCancelledBeforeStart(t *testing.T) {
	e := New(testModels(t, 4), Config{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.ScanCtx(ctx, testModels(t, 1)[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestScanBatchCtxCancelPrompt cancels mid-scan with slowed workers and
// asserts the call returns well within the 100ms budget.
func TestScanBatchCtxCancelPrompt(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	faultinject.Enable(faultinject.ScanWorker, faultinject.Sleep(time.Millisecond))
	e := New(testModels(t, 32), Config{Workers: 2})
	targets := testModels(t, 16)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.ScanBatchCtx(ctx, targets)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let workers start claiming
	cancel()
	start := time.Now()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if d := time.Since(start); d > 100*time.Millisecond {
			t.Fatalf("cancel-to-return took %v, want < 100ms", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("scan did not return after cancel")
	}
}

// TestScanWorkerPanicRecovered: a panic while scoring becomes an error
// from the ctx API, counted in telemetry, and a re-panic from the
// non-ctx API.
func TestScanWorkerPanicRecovered(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	faultinject.Enable(faultinject.ScanWorker, faultinject.OnCall(3, faultinject.Panic("scan worker crash")))
	tel := telemetry.NewCollector()
	e := New(testModels(t, 8), Config{Workers: 4, Telemetry: tel})
	_, err := e.ScanBatchCtx(context.Background(), testModels(t, 2))
	pe, ok := panicsafe.AsPanic(err)
	if !ok {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Value != "scan worker crash" {
		t.Errorf("panic value = %v", pe.Value)
	}
	if got := tel.Counter(telemetry.PanicsRecovered); got != 1 {
		t.Errorf("panics_recovered = %d, want 1", got)
	}

	faultinject.Reset()
	faultinject.Enable(faultinject.ScanWorker, faultinject.OnCall(1, faultinject.Panic("loud crash")))
	func() {
		defer func() {
			if r := recover(); r != "loud crash" {
				t.Errorf("ScanBatch recovered %v, want loud crash", r)
			}
		}()
		e.ScanBatch(testModels(t, 1))
		t.Error("ScanBatch did not re-panic")
	}()
}

// TestScanBatchCtxSerialPathCancelAndPanic covers the workers<=1 inline
// path of the same contract.
func TestScanBatchCtxSerialPathCancelAndPanic(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	e := New(testModels(t, 8), Config{Workers: 1})

	faultinject.Enable(faultinject.ScanWorker, faultinject.OnCall(2, faultinject.Panic("serial crash")))
	_, err := e.ScanBatchCtx(context.Background(), testModels(t, 1))
	if _, ok := panicsafe.AsPanic(err); !ok {
		t.Fatalf("serial panic: err = %v, want *PanicError", err)
	}

	faultinject.Reset()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.ScanBatchCtx(ctx, testModels(t, 1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("serial cancel: err = %v, want context.Canceled", err)
	}
}
