package scan

// Differential, tie-break, telemetry and allocation tests for the
// cascade scan path (Config.Cascade): the lazy lower-bound escalation
// must preserve every invariant of plain pruning — exact best match,
// true upper bounds on pruned scores — while the warm comparison path
// runs allocation-free.

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/similarity"
	"repro/internal/telemetry"
)

func bestMatch(ms []Match) (int, float64) {
	bi, bs := -1, math.Inf(-1)
	for i, m := range ms {
		if m.Score > bs {
			bi, bs = i, m.Score
		}
	}
	return bi, bs
}

// The cascade scan obeys the pruned-scan contract: exact best (lowest
// index on ties), bit-identical best score, and every pruned score a
// true upper bound — against the serial reference, over randomized
// corpora and worker counts.
func TestCascadeScanKeepsBestExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		entries := randomCorpus(rng, 2+rng.Intn(12), 8)
		eng := New(entries, Config{Workers: 1 + rng.Intn(4), Prune: true, Cascade: true, Sim: similarity.DefaultOptions()})
		for trial := 0; trial < 4; trial++ {
			target := randomBBS(rng, 8)
			got := eng.Scan(target)
			want := eng.ScanSerial(target)
			wi, ws := bestMatch(want)
			gi, gs := bestMatch(got)
			if got[wi].Pruned {
				t.Logf("seed=%d: true best entry %d was pruned", seed, wi)
				return false
			}
			if gi != wi || gs != ws {
				t.Logf("seed=%d: cascade best (%d,%v) != serial best (%d,%v)", seed, gi, gs, wi, ws)
				return false
			}
			for i, m := range got {
				if m.Pruned {
					if m.Score < want[i].Score {
						t.Logf("seed=%d entry %d: pruned bound %v below exact %v", seed, i, m.Score, want[i].Score)
						return false
					}
				} else if m.Score != want[i].Score {
					t.Logf("seed=%d entry %d: non-pruned score %v != exact %v", seed, i, m.Score, want[i].Score)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Cascade=true without Prune must be a no-op: bit-identical to the
// exact scan (and therefore to the serial reference).
func TestCascadeWithoutPruneIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	entries := randomCorpus(rng, 10, 8)
	plain := New(entries, Config{Sim: similarity.DefaultOptions()})
	casc := New(entries, Config{Cascade: true, Sim: similarity.DefaultOptions()})
	for trial := 0; trial < 8; trial++ {
		target := randomBBS(rng, 8)
		got, want := casc.Scan(target), plain.Scan(target)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d entry %d: cascade-no-prune %+v != exact %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// Candidate reordering must not disturb tie-breaking: with duplicate
// repository entries tying for best, every tied copy is scored exactly
// (the pruneCutoff margin forbids pruning a tie), scores are identical,
// and the positional result keeps the first index as max-score winner.
func TestCascadeTieBreakOnDuplicateBest(t *testing.T) {
	dup := randomBBS(rand.New(rand.NewSource(3)), 6)
	for dup.Len() == 0 {
		dup = randomBBS(rand.New(rand.NewSource(4)), 6)
	}
	rng := rand.New(rand.NewSource(5))
	// entries: decoys around two identical copies of the target model.
	corpus := append(randomCorpus(rng, 3, 8), dup, randomBBS(rng, 8), dup, randomBBS(rng, 8))
	for _, workers := range []int{1, 4} {
		eng := New(corpus, Config{Workers: workers, Prune: true, Cascade: true, Sim: similarity.DefaultOptions()})
		for trial := 0; trial < 6; trial++ {
			ms := eng.Scan(dup)
			if ms[3].Pruned || ms[5].Pruned {
				t.Fatalf("workers=%d trial=%d: a tied-best duplicate was pruned: %+v / %+v", workers, trial, ms[3], ms[5])
			}
			if ms[3].Score != 1 || ms[5].Score != 1 {
				t.Fatalf("workers=%d trial=%d: self-match scores (%v, %v), want (1, 1)", workers, trial, ms[3].Score, ms[5].Score)
			}
			if bi, _ := bestMatch(ms); bi != 3 {
				t.Fatalf("workers=%d trial=%d: max-score index %d, want first duplicate 3", workers, trial, bi)
			}
		}
	}
}

// Per-tier prune counters must account for every entry exactly once:
// kim-skipped + keogh-skipped + lowerbound-skipped + abandoned + exact
// = entries × scans, and the cheap tiers actually fire on a corpus with
// obvious outliers.
func TestCascadeTelemetryCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	entries := randomCorpus(rng, 16, 8)
	for i, e := range entries {
		if e.Len() == 0 {
			entries[i] = randomBBS(rand.New(rand.NewSource(int64(100+i))), 7)
		}
	}
	tel := telemetry.NewCollector()
	eng := New(entries, Config{Prune: true, Cascade: true, Telemetry: tel, Sim: similarity.DefaultOptions()})
	const scans = 5
	for trial := 0; trial < scans; trial++ {
		eng.Scan(randomBBS(rng, 8))
	}
	sum := tel.Counter(telemetry.ScanEntriesKimSkipped) +
		tel.Counter(telemetry.ScanEntriesKeoghSkipped) +
		tel.Counter(telemetry.ScanEntriesLowerBoundSkipped) +
		tel.Counter(telemetry.ScanEntriesAbandoned) +
		tel.Counter(telemetry.ScanEntriesExact)
	if want := uint64(len(entries) * scans); sum != want {
		t.Errorf("tier counters sum to %d, want %d (kim=%d keogh=%d lb=%d abandoned=%d exact=%d)",
			sum, want,
			tel.Counter(telemetry.ScanEntriesKimSkipped),
			tel.Counter(telemetry.ScanEntriesKeoghSkipped),
			tel.Counter(telemetry.ScanEntriesLowerBoundSkipped),
			tel.Counter(telemetry.ScanEntriesAbandoned),
			tel.Counter(telemetry.ScanEntriesExact))
	}
	if tel.Counter(telemetry.ScanEntriesExact) == 0 {
		t.Error("no entry was scored exactly — the best must always be")
	}
}

// The warm comparison path allocates nothing: once the engine, target,
// scratch, memo cache and cutoff are warm, scoring every entry again
// performs zero allocations per scan — exact mode, pruned mode and the
// full cascade alike. This pins the flattened-kernel design (scratch
// DTW/Levenshtein rows, prebuilt dist closure, map-read-only memo).
func TestScanZeroAllocWarmPath(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	entries := randomCorpus(rng, 24, 8)
	target := randomBBS(rng, 8)
	for target.Len() == 0 {
		target = randomBBS(rng, 8)
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"Exact", Config{Sim: similarity.DefaultOptions()}},
		{"Pruned", Config{Prune: true, Sim: similarity.DefaultOptions()}},
		{"Cascade", Config{Prune: true, Cascade: true, Sim: similarity.DefaultOptions()}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			eng := New(entries, c.cfg)
			tgt := eng.newTarget(target)
			var lbs, kims []float64
			if c.cfg.Prune {
				lbs = make([]float64, len(entries))
				if c.cfg.Cascade {
					// Mirror scanBatchCtx: tier-1 bound kept for skip
					// attribution, lbs carries max(kim, keogh).
					kims = make([]float64, len(entries))
					var keo similarity.KeoghScratch
					for ei := range entries {
						kims[ei] = similarity.LowerBoundKim(tgt.prof, eng.profs[ei], eng.sim)
						lbs[ei] = kims[ei]
						if b := similarity.LowerBoundKeogh(tgt.prof, eng.profs[ei], eng.sim, &keo); b > lbs[ei] {
							lbs[ei] = b
						}
					}
				} else {
					for ei := range entries {
						lbs[ei] = similarity.LowerBound(tgt.prof, eng.profs[ei], eng.sim)
					}
				}
			}
			cut := NewCutoff()
			s := eng.newScratch()
			// Warm pass: fills the Levenshtein memo for every cell the
			// measured pass can visit (a tighter cutoff only shrinks the
			// visited set), grows every scratch buffer, settles the cutoff.
			for ei := range entries {
				eng.scoreOne(tgt, ei, lbs, kims, cut, s)
			}
			allocs := testing.AllocsPerRun(20, func() {
				for ei := range entries {
					eng.scoreOne(tgt, ei, lbs, kims, cut, s)
				}
			})
			if allocs != 0 {
				t.Errorf("warm scan path allocates %.1f times per full repository pass, want 0", allocs)
			}
		})
	}
}
