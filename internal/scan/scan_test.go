package scan

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/attacks"
	"repro/internal/cache"
	"repro/internal/model"
	"repro/internal/similarity"
)

func cst(norm []string, delta float64) model.CST {
	return model.CST{
		NormInsns: norm,
		Before:    cache.State{AO: 0, IO: 1},
		After:     cache.State{AO: delta, IO: 1 - delta},
	}
}

// randomBBS draws sequences from a small block vocabulary so that blocks
// repeat across models — the workload the DistCache exists for.
func randomBBS(rng *rand.Rand, maxLen int) *model.CSTBBS {
	vocab := [][]string{
		{"clflush mem"},
		{"mov reg, mem", "rdtscp reg"},
		{"mov reg, mem", "add reg, imm", "cmp reg, imm"},
		{"rdtscp reg", "mov reg, mem", "rdtscp reg", "sub reg, reg"},
		{"add reg, imm"},
		{"mov reg, mem"},
	}
	n := rng.Intn(maxLen + 1)
	s := &model.CSTBBS{Name: "r", TimerReads: 1}
	for i := 0; i < n; i++ {
		s.Seq = append(s.Seq, cst(vocab[rng.Intn(len(vocab))], float64(rng.Intn(10))/16))
	}
	return s
}

func randomCorpus(rng *rand.Rand, n, maxLen int) []*model.CSTBBS {
	out := make([]*model.CSTBBS, n)
	for i := range out {
		out[i] = randomBBS(rng, maxLen)
	}
	return out
}

// Exact mode must be bit-identical to the serial reference — not merely
// close: the same comparisons, the same float operations.
func TestScanMatchesSerialExactly(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		entries := randomCorpus(rng, 1+rng.Intn(12), 8)
		eng := New(entries, Config{Workers: 1 + rng.Intn(4), Sim: similarity.DefaultOptions()})
		for trial := 0; trial < 4; trial++ {
			target := randomBBS(rng, 8)
			got := eng.Scan(target)
			want := eng.ScanSerial(target)
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					t.Logf("seed=%d entry %d: parallel %+v serial %+v", seed, i, got[i], want[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Pruned mode may skip entries, but the winner must stay exact: same
// best index (under lowest-index tie-breaking) and identical best score
// as the serial path, and every pruned entry's reported score must be a
// true upper bound on its exact score.
func TestPrunedScanKeepsBestExact(t *testing.T) {
	best := func(ms []Match) (int, float64) {
		bi, bs := -1, math.Inf(-1)
		for i, m := range ms {
			if m.Score > bs {
				bi, bs = i, m.Score
			}
		}
		return bi, bs
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		entries := randomCorpus(rng, 2+rng.Intn(12), 8)
		eng := New(entries, Config{Workers: 1 + rng.Intn(4), Prune: true, Sim: similarity.DefaultOptions()})
		for trial := 0; trial < 4; trial++ {
			target := randomBBS(rng, 8)
			got := eng.Scan(target)
			want := eng.ScanSerial(target)
			wi, ws := best(want)
			gi, gs := best(got)
			if got[wi].Pruned {
				t.Logf("seed=%d: true best entry %d was pruned", seed, wi)
				return false
			}
			if gi != wi || gs != ws {
				t.Logf("seed=%d: pruned best (%d,%v) != serial best (%d,%v)", seed, gi, gs, wi, ws)
				return false
			}
			for i, m := range got {
				if m.Pruned {
					if m.Score < want[i].Score {
						t.Logf("seed=%d entry %d: pruned bound %v below exact %v", seed, i, m.Score, want[i].Score)
						return false
					}
				} else if m.Score != want[i].Score {
					t.Logf("seed=%d entry %d: non-pruned score %v != exact %v", seed, i, m.Score, want[i].Score)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// ScanBatch must agree with per-target Scan.
func TestScanBatchMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	entries := randomCorpus(rng, 10, 8)
	targets := randomCorpus(rng, 6, 8)
	eng := New(entries, Config{Workers: 3, Sim: similarity.DefaultOptions()})
	batch := eng.ScanBatch(targets)
	for ti, target := range targets {
		single := eng.Scan(target)
		for i := range single {
			if batch[ti][i] != single[i] {
				t.Fatalf("target %d entry %d: batch %+v != single %+v", ti, i, batch[ti][i], single[i])
			}
		}
	}
}

// A real-corpus differential check: models built from actual PoCs via
// the full simulator pipeline, scanned in parallel vs serially.
func TestScanRealCorpus(t *testing.T) {
	p := attacks.DefaultParams()
	pocs := []attacks.PoC{
		attacks.FlushReloadIAIK(p),
		attacks.PrimeProbeIAIK(p),
		attacks.SpectreFRIdea(p),
	}
	var models []*model.CSTBBS
	for _, poc := range pocs {
		m, err := model.Build(poc.Program, poc.Victim, model.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		models = append(models, m.BBS)
	}
	eng := New(models, Config{Workers: 4, Sim: similarity.DefaultOptions()})
	for _, target := range models {
		got := eng.Scan(target)
		want := eng.ScanSerial(target)
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("%s vs entry %d: parallel %+v serial %+v", target.Name, i, got[i], want[i])
			}
		}
	}
	// Self-scan must find itself with score 1.
	self := eng.Scan(models[0])
	if self[0].Score != 1 {
		t.Errorf("self score = %v, want 1", self[0].Score)
	}
}

// Engines are safe for concurrent use: many goroutines scanning one
// engine (exercised under -race) must each get the serial answer.
func TestConcurrentScans(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	entries := randomCorpus(rng, 8, 8)
	targets := randomCorpus(rng, 8, 8)
	for _, prune := range []bool{false, true} {
		eng := New(entries, Config{Workers: 4, Prune: prune, Sim: similarity.DefaultOptions()})
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				target := targets[g]
				got := eng.Scan(target)
				want := eng.ScanSerial(target)
				for i := range got {
					if !got[i].Pruned && got[i].Score != want[i].Score {
						t.Errorf("goroutine %d entry %d: %v != %v", g, i, got[i].Score, want[i].Score)
					}
				}
			}(g)
		}
		wg.Wait()
	}
}

func TestScanEdgeCases(t *testing.T) {
	empty := &model.CSTBBS{Name: "empty"}
	full := randomBBS(rand.New(rand.NewSource(3)), 6)
	for len(full.Seq) == 0 {
		full = randomBBS(rand.New(rand.NewSource(4)), 6)
	}

	// Empty engine: no matches.
	if got := New(nil, Config{}).Scan(full); len(got) != 0 {
		t.Errorf("empty engine returned %d matches", len(got))
	}
	// Empty target vs non-empty entries: score 0 everywhere.
	eng := New([]*model.CSTBBS{full}, Config{})
	if got := eng.Scan(empty); got[0].Score != 0 {
		t.Errorf("empty target score = %v", got[0].Score)
	}
	// Empty entry vs empty target: identical, score 1.
	eng2 := New([]*model.CSTBBS{empty}, Config{Prune: true})
	if got := eng2.Scan(empty); got[0].Score != 1 {
		t.Errorf("empty-empty score = %v", got[0].Score)
	}
}

func TestDistCache(t *testing.T) {
	c := NewDistCache()
	a := []string{"mov reg, mem", "add reg, imm"}
	b := []string{"mov reg, mem"}
	ia, ib := c.intern(a), c.intern(b)
	if ia == ib {
		t.Fatal("distinct sequences interned to one id")
	}
	if again := c.intern(append([]string(nil), a...)); again != ia {
		t.Error("equal sequence interned to a new id")
	}
	// Length-prefixing keeps adversarial token splits apart.
	x := c.intern([]string{"ab", "c"})
	y := c.intern([]string{"a", "bc"})
	if x == y {
		t.Error("collision between [ab c] and [a bc]")
	}
	d1 := c.normalized(ia, a, ib, b)
	d2 := c.normalized(ib, b, ia, a) // symmetric, canonical pair key
	if d1 != d2 {
		t.Errorf("asymmetric memo: %v vs %v", d1, d2)
	}
	if got := c.normalized(ia, a, ia, a); got != 0 {
		t.Errorf("self distance = %v", got)
	}
	if blocks, pairs := c.Stats(); blocks != 4 || pairs != 1 {
		t.Errorf("stats = (%d,%d), want (4,1)", blocks, pairs)
	}
}
