package scan

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/similarity"
)

func TestCutoffBasics(t *testing.T) {
	c := NewCutoff()
	if !math.IsInf(c.Best(), 1) {
		t.Fatalf("fresh cutoff best = %v, want +Inf", c.Best())
	}
	ch := c.Changed()
	if !c.Update(0.5) {
		t.Fatal("Update(0.5) on +Inf reported no improvement")
	}
	select {
	case <-ch:
	default:
		t.Fatal("Changed channel not closed by improving Update")
	}
	if c.Update(0.7) {
		t.Error("Update(0.7) above best reported improvement")
	}
	if c.Update(0.5) {
		t.Error("Update(0.5) equal to best reported improvement")
	}
	if got := c.Best(); got != 0.5 {
		t.Errorf("best = %v, want 0.5", got)
	}
	// Each Changed channel fires once; a fresh one is armed after.
	ch2 := c.Changed()
	c.Update(0.25)
	select {
	case <-ch2:
	default:
		t.Fatal("second Changed channel not closed")
	}
}

func TestCutoffConcurrentUpdates(t *testing.T) {
	c := NewCutoff()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 500; i++ {
				c.Update(rng.Float64())
			}
		}(g)
	}
	wg.Wait()
	if best := c.Best(); best < 0 || best >= 1 {
		t.Errorf("best = %v after concurrent updates, want within [0,1)", best)
	}
}

// A shared cutoff must only ever tighten pruning — the winner stays
// exact and every pruned score is a true upper bound, exactly as with a
// private cutoff, even when the cutoff was pre-seeded by "another
// shard" (here: a prior scan of the same target).
func TestScanCutoffCtxSharedBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	entries := randomCorpus(rng, 12, 8)
	eng := New(entries, Config{Workers: 3, Prune: true, Sim: similarity.DefaultOptions()})
	for trial := 0; trial < 8; trial++ {
		target := randomBBS(rng, 8)
		want := eng.ScanSerial(target)
		cut := NewCutoff()
		got, err := eng.ScanCutoffCtx(context.Background(), target, cut)
		if err != nil {
			t.Fatal(err)
		}
		// Re-scan with the now-tight cutoff still carried over: more
		// pruning is allowed, wrong answers are not.
		again, err := eng.ScanCutoffCtx(context.Background(), target, cut)
		if err != nil {
			t.Fatal(err)
		}
		for _, ms := range [][]Match{got, again} {
			bi, bs := -1, math.Inf(-1)
			for i, m := range ms {
				if m.Score > bs {
					bi, bs = i, m.Score
				}
				if m.Pruned {
					if m.Score < want[i].Score {
						t.Fatalf("trial %d: pruned bound %v below exact %v", trial, m.Score, want[i].Score)
					}
				} else if m.Score != want[i].Score {
					t.Fatalf("trial %d: exact score %v != serial %v", trial, m.Score, want[i].Score)
				}
			}
			wi, ws := -1, math.Inf(-1)
			for i, m := range want {
				if m.Score > ws {
					wi, ws = i, m.Score
				}
			}
			if bi != wi || bs != ws {
				t.Fatalf("trial %d: best (%d,%v) != serial best (%d,%v)", trial, bi, bs, wi, ws)
			}
		}
	}
}

// Exact mode must ignore the cutoff entirely: bit-identical to Scan.
func TestScanCutoffCtxExactBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	entries := randomCorpus(rng, 10, 8)
	eng := New(entries, Config{Workers: 4, Sim: similarity.DefaultOptions()})
	cut := NewCutoff()
	cut.Update(0) // an absurdly tight bound that exact mode must not see
	for trial := 0; trial < 4; trial++ {
		target := randomBBS(rng, 8)
		got, err := eng.ScanCutoffCtx(context.Background(), target, cut)
		if err != nil {
			t.Fatal(err)
		}
		want := eng.Scan(target)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d entry %d: %+v != %+v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestNextInternIDOverflowPanics(t *testing.T) {
	if got := nextInternID(7); got != 7 {
		t.Fatalf("nextInternID(7) = %d", got)
	}
	// The cap must leave the sentinel unreachable in normal operation.
	if uint64(maxInterned) >= uint64(noID) {
		t.Fatalf("maxInterned %d does not stay below noID %d", maxInterned, uint64(noID))
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("nextInternID(noID) did not panic")
		}
		oe, ok := r.(*InternOverflowError)
		if !ok {
			t.Fatalf("panic value %T, want *InternOverflowError", r)
		}
		if oe.Interned != int(noID) || oe.Error() == "" {
			t.Errorf("overflow error %+v", oe)
		}
	}()
	nextInternID(int(noID))
}
