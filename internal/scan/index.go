package scan

// The index-guided scan path: scores cluster prototypes first, visits
// clusters in ascending prototype-distance order, and dismisses the
// members of clusters that cannot beat the running cutoff on cheap
// per-entry certificates. Exact mode (the default) is bit-identical to
// the flat pruned engine on the best match and verdict: the triangle-
// inequality cluster gate only *orders* work and picks certificate
// strategies — every skipped entry carries a sound lower-bound
// certificate from the cascade tiers (Kim → Keogh → per-row → DTW
// abandon), because the path-length-normalized DTW distance is not a
// metric and the gate alone would not be a proof. Only the explicit
// IndexMaxClusters mode trusts the gate for skips, trading recall.
// The full construction and soundness writeup is docs/INDEXING.md.

import (
	"math"
	"sort"

	"repro/internal/dtw"
	"repro/internal/index"
	"repro/internal/similarity"
	"repro/internal/telemetry"
)

// indexed reports whether scans run the index-guided path.
func (e *Engine) indexed() bool { return e.cfg.Prune && e.idx != nil }

// entryDist adapts the engine's memoized comparison kernel to the
// index's entry-pair DistFunc: entry i is viewed as a target (its
// profile, interned ids and flattened form already exist) and compared
// exactly against entry j. Shared with index.Build and index.Extend.
func (e *Engine) entryDist(s *scratch) index.DistFunc {
	var t target
	return func(i, j int) float64 {
		t = target{bbs: e.models[i], prof: e.profs[i], ids: e.ids[i], flat: e.flats[i]}
		d, _ := e.compare(&t, j, math.Inf(1), s)
		return d
	}
}

// buildIndex constructs (or incrementally extends) the repository
// index at engine build time. A failed build — only the index.build
// failpoint fails it — degrades to flat scanning: the engine keeps
// working, it just is not sub-linear.
func (e *Engine) buildIndex() *index.Index {
	// The build scratch comes from (and returns to) the engine pool on
	// purpose: the O(n²) distance pass fills the worker-local pair memo
	// with exactly the entry-pair cells later scans revisit.
	s := e.getScratch()
	defer e.putScratch(s)
	dist := e.entryDist(s)
	if prev := e.cfg.IndexFrom; prev != nil {
		if ix := index.Extend(prev, len(e.models), dist); ix != nil {
			e.cfg.Telemetry.Inc(telemetry.IndexRebuilds)
			return ix
		}
	}
	ix, err := index.Build(len(e.models), e.cfg.IndexClusters, dist)
	if err != nil {
		return nil
	}
	e.cfg.Telemetry.Inc(telemetry.IndexRebuilds)
	return ix
}

// scanIndexed scores one target against the whole repository through
// the index, filling out (len == number of entries) in place. It runs
// as a single work item: phase 1 exact-scores every cluster prototype
// (cheapest Kim bound first, so the shared cutoff tightens early),
// phase 2 walks clusters in ascending prototype distance, skipping or
// descending per cluster.
func (e *Engine) scanIndexed(t *target, out []Match, cut *Cutoff, s *scratch) {
	tel := e.cfg.Telemetry
	cs := e.idx.Clusters
	k := len(cs)
	if k == 0 {
		return
	}
	s.sizeIndex(k)

	// Phase 1: prototype scores, cheapest O(1) Kim bound first so the
	// shared cutoff tightens after the first medoid and later medoids can
	// abandon early. An abandoned prototype comparison still returns a
	// sound lower bound on its true distance (the abandon row-minimum
	// over the worst-case path length), so the phase-2 gate built from it
	// only gets more conservative — it can under-skip, never over-skip.
	for c := range cs {
		s.protoOrd[c] = c
		s.protoKim[c] = similarity.LowerBoundKim(t.prof, e.profs[cs[c].Medoid], e.sim)
	}
	sort.SliceStable(s.protoOrd, func(a, b int) bool { return s.protoKim[s.protoOrd[a]] < s.protoKim[s.protoOrd[b]] })
	for _, c := range s.protoOrd {
		m := cs[c].Medoid
		d, abandoned := e.compare(t, m, pruneCutoff(cut.Best()), s)
		s.protoDist[c] = d
		if abandoned {
			tel.Inc(telemetry.ScanEntriesAbandoned)
			out[m] = Match{Index: m, Score: dtw.Similarity(d), Pruned: true}
			continue
		}
		cut.Update(d)
		tel.Inc(telemetry.ScanEntriesExact)
		out[m] = Match{Index: m, Score: dtw.Similarity(d)}
	}

	// Phase 2: clusters in ascending prototype-distance order, ties on
	// cluster position for determinism.
	for c := range cs {
		s.protoOrd[c] = c
	}
	sort.SliceStable(s.protoOrd, func(a, b int) bool { return s.protoDist[s.protoOrd[a]] < s.protoDist[s.protoOrd[b]] })
	descended := 0
	for _, c := range s.protoOrd {
		cl := &cs[c]
		if len(cl.Members) == 0 {
			continue // singleton: the medoid is already scored exactly
		}
		cutoff := pruneCutoff(cut.Best())
		// The triangle-inequality estimate: no member can (if the
		// distance were a metric) be closer than protoDist − radius.
		// Shrunk by the shared lbSafety margin on the conservative side.
		gate := s.protoDist[c] - cl.Radius
		if gate > 0 {
			gate *= similarity.LBSafety
		}
		skip := gate > cutoff
		switch {
		case skip:
			tel.Inc(telemetry.IndexClustersSkipped)
		case e.cfg.IndexMaxClusters > 0 && descended >= e.cfg.IndexMaxClusters:
			// Approximate mode: the cluster budget is spent. Trust the
			// gate alone: every member reports a pruned estimate (the
			// estimate is clamped to the cutoff so the exact winner's
			// score still ranks first) and no certificates are checked.
			// This is the only path that can miss the true best match.
			tel.Inc(telemetry.IndexClustersSkipped)
			est := gate
			if est < cutoff {
				est = cutoff
			}
			sc := dtw.Similarity(est)
			for _, mb := range cl.Members {
				out[mb.Entry] = Match{Index: mb.Entry, Score: sc, Pruned: true}
			}
			continue
		default:
			tel.Inc(telemetry.IndexClustersDescended)
			descended++
		}
		// Member visit order: for descended clusters, nearest first by
		// the |protoDist(target) − protoDist(member)| estimate, so the
		// likely winner tightens the cutoff before its siblings are
		// examined. For gate-skipped clusters order cannot matter — all
		// members are expected to certificate out — so skip the sort.
		mo := s.memOrd[:0]
		for mi := range cl.Members {
			mo = append(mo, mi)
		}
		if !skip {
			pd := s.protoDist[c]
			sort.SliceStable(mo, func(a, b int) bool {
				ea := math.Abs(pd - cl.Members[mo[a]].ProtoDist)
				eb := math.Abs(pd - cl.Members[mo[b]].ProtoDist)
				return ea < eb
			})
		}
		for _, mi := range mo {
			ei := cl.Members[mi].Entry
			out[ei] = e.scoreOneIndexed(t, ei, cut, s)
		}
		s.memOrd = mo[:0]
	}
}

// scoreOneIndexed scores one member entry through the lazily evaluated
// certificate ladder: the O(1) Kim bound, the O(n+m) Keogh envelope,
// the exact per-row bound (behind the same cutoff-proximity gate the
// cascade uses), then the early-abandoning DTW. Identical soundness to
// scoreOne with Cascade on — every tier is a true lower bound, so the
// best match stays exact — but the bounds are computed on demand
// instead of for the whole repository upfront, which is where the
// indexed scan's sub-linearity comes from.
func (e *Engine) scoreOneIndexed(t *target, ei int, cut *Cutoff, s *scratch) Match {
	tel := e.cfg.Telemetry
	cutoff := pruneCutoff(cut.Best())
	bound := similarity.LowerBoundKim(t.prof, e.profs[ei], e.sim)
	if bound > cutoff {
		tel.Inc(telemetry.ScanEntriesKimSkipped)
		return Match{Index: ei, Score: dtw.Similarity(bound), Pruned: true}
	}
	if b := similarity.LowerBoundKeogh(t.prof, e.profs[ei], e.sim, &s.keo); b > bound {
		bound = b
	}
	if bound > cutoff {
		tel.Inc(telemetry.ScanEntriesKeoghSkipped)
		return Match{Index: ei, Score: dtw.Similarity(bound), Pruned: true}
	}
	if bound > cutoff*cascadeEscalateFrac {
		if b := similarity.LowerBound(t.prof, e.profs[ei], e.sim); b > bound {
			bound = b
		}
		if bound > cutoff {
			tel.Inc(telemetry.ScanEntriesLowerBoundSkipped)
			return Match{Index: ei, Score: dtw.Similarity(bound), Pruned: true}
		}
	}
	d, abandoned := e.compare(t, ei, cutoff, s)
	if abandoned {
		tel.Inc(telemetry.ScanEntriesAbandoned)
		return Match{Index: ei, Score: dtw.Similarity(d), Pruned: true}
	}
	cut.Update(d)
	tel.Inc(telemetry.ScanEntriesExact)
	return Match{Index: ei, Score: dtw.Similarity(d)}
}
