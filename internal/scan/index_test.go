package scan

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/attacks"
	"repro/internal/cache"
	"repro/internal/dataset"
	"repro/internal/faultinject"
	"repro/internal/model"
	"repro/internal/telemetry"
)

// synthBBS builds a random but deterministic CST-BBS: a handful of
// blocks with short normalized-instruction sequences over a small
// vocabulary (so block pairs recur, like real corpora) and random cache
// state transitions.
func synthBBS(rng *rand.Rand, name string) *model.CSTBBS {
	words := []string{
		"mov r0, [m0]", "clflush [m0]", "rdtscp", "add r0, r1",
		"cmp r0, 4", "jl L0", "xor r1, r1", "mov [m1], r0",
	}
	n := 2 + rng.Intn(12)
	seq := make([]model.CST, n)
	for i := range seq {
		ni := make([]string, 1+rng.Intn(4))
		for k := range ni {
			ni[k] = words[rng.Intn(len(words))]
		}
		seq[i] = model.CST{
			Leader:     uint64(0x1000 + 16*i),
			Before:     cache.State{AO: float64(rng.Intn(8)), IO: float64(rng.Intn(8))},
			After:      cache.State{AO: float64(rng.Intn(8)), IO: float64(rng.Intn(8))},
			NormInsns:  ni,
			FirstCycle: uint64(i),
		}
	}
	return &model.CSTBBS{Name: name, Seq: seq, TimerReads: 1}
}

func synthModels(rng *rand.Rand, n int) []*model.CSTBBS {
	ms := make([]*model.CSTBBS, n)
	for i := range ms {
		ms[i] = synthBBS(rng, fmt.Sprintf("m%03d", i))
	}
	return ms
}

// TestIndexedScanBestIdentity is the descent-soundness property test:
// over many randomized repositories and targets, the indexed engine's
// best match — winner and bit-exact score — must equal the exact
// engine's, for default and forced cluster counts. This is exactly the
// claim the triangle-inequality gate could break if it were trusted
// for skips (the normalized DTW distance is not a metric); the
// certificate design keeps it true.
func TestIndexedScanBestIdentity(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		models := synthModels(rng, 10+rng.Intn(50))
		exact := New(models, Config{Workers: 1})
		flat := New(models, Config{Workers: 1, Prune: true})
		for _, clusters := range []int{0, 1, 3, len(models)} {
			eng := New(models, Config{Workers: 1, Prune: true, Index: true, IndexClusters: clusters})
			if eng.Index() == nil {
				t.Fatalf("seed %d clusters %d: index not built", seed, clusters)
			}
			for ti := 0; ti < 4; ti++ {
				tgt := synthBBS(rng, "target")
				want := bestOf(exact.Scan(tgt))
				gotFlat := bestOf(flat.Scan(tgt))
				got := bestOf(eng.Scan(tgt))
				if got.Index != want.Index || got.Score != want.Score || got.Pruned {
					t.Fatalf("seed %d clusters %d target %d: indexed best (%d, %v, pruned=%v), exact best (%d, %v)",
						seed, clusters, ti, got.Index, got.Score, got.Pruned, want.Index, want.Score)
				}
				if gotFlat.Index != want.Index || gotFlat.Score != want.Score {
					t.Fatalf("seed %d: flat pruned best diverged from exact (harness bug)", seed)
				}
			}
		}
	}
}

// TestIndexedScanBestIdentityFamilies is the same property over
// family-structured corpora with in-family targets — the regime where
// the skip gate actually fires, so the certificate path (not just the
// descend path) is what must preserve the winner.
func TestIndexedScanBestIdentityFamilies(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		models := synthFamilies(rng, 3+rng.Intn(5), 4+rng.Intn(10))
		exact := New(models, Config{Workers: 1})
		eng := New(models, Config{Workers: 1, Prune: true, Index: true})
		for ti := 0; ti < 6; ti++ {
			var tgt *model.CSTBBS
			if ti%2 == 0 {
				src := models[rng.Intn(len(models))]
				tgt = &model.CSTBBS{Name: "t", Seq: src.Seq, TimerReads: 1}
			} else {
				tgt = synthBBS(rng, "t")
			}
			want, got := bestOf(exact.Scan(tgt)), bestOf(eng.Scan(tgt))
			if got.Index != want.Index || got.Score != want.Score || got.Pruned {
				t.Fatalf("seed %d target %d: indexed best (%d, %v, pruned=%v), exact (%d, %v)",
					seed, ti, got.Index, got.Score, got.Pruned, want.Index, want.Score)
			}
		}
	}
}

// TestIndexedScanDeterministic: within one target the indexed descent
// is sequential, so the full match list — including which entries
// report Pruned — is reproducible run to run, even with a parallel
// batch (each target is one work item with a private cutoff).
func TestIndexedScanDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	models := synthModels(rng, 40)
	targets := make([]*model.CSTBBS, 6)
	for i := range targets {
		targets[i] = synthBBS(rng, fmt.Sprintf("t%d", i))
	}
	a := New(models, Config{Workers: 4, Prune: true, Index: true})
	b := New(models, Config{Workers: 2, Prune: true, Index: true})
	ra := a.ScanBatch(targets)
	rb := b.ScanBatch(targets)
	if !reflect.DeepEqual(ra, rb) {
		t.Fatal("indexed match lists differ across runs/worker counts")
	}
}

func TestIndexedScanWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	models := synthModels(rng, 25)
	eng := New(models, Config{Workers: 1, Prune: true, Index: true})
	ms := eng.Scan(synthBBS(rng, "t"))
	if len(ms) != len(models) {
		t.Fatalf("got %d matches, want %d", len(ms), len(models))
	}
	for i, m := range ms {
		if m.Index != i {
			t.Fatalf("match %d carries index %d", i, m.Index)
		}
		if m.Score < 0 || m.Score > 1 {
			t.Fatalf("match %d score %v out of range", i, m.Score)
		}
	}
}

// TestIndexedEngineDegradesOnBuildFault: an injected index.build fault
// must leave a working engine that scans the flat pruned path with the
// exact same best match — never a failed classification.
func TestIndexedEngineBuildFaultDegrades(t *testing.T) {
	defer faultinject.Reset()
	rng := rand.New(rand.NewSource(11))
	models := synthModels(rng, 20)
	tgt := synthBBS(rng, "t")
	want := bestOf(New(models, Config{Workers: 1}).Scan(tgt))

	faultinject.Enable(faultinject.IndexBuild, faultinject.Error(errors.New("injected")))
	eng := New(models, Config{Workers: 1, Prune: true, Index: true})
	faultinject.Reset()
	if eng.Index() != nil {
		t.Fatal("index should have degraded under the build fault")
	}
	got := bestOf(eng.Scan(tgt))
	if got.Index != want.Index || got.Score != want.Score {
		t.Fatalf("degraded engine best (%d, %v), want (%d, %v)", got.Index, got.Score, want.Index, want.Score)
	}
}

// TestIndexedApproxMode: the MaxClusters recall knob yields well-formed
// results whose exactly-scored entries (all prototypes among them) are
// correct, and the clamped estimates of force-skipped members can never
// outrank the exact winner.
func TestIndexedApproxMode(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	models := synthModels(rng, 40)
	eng := New(models, Config{Workers: 1, Prune: true, Index: true, IndexMaxClusters: 1})
	exact := New(models, Config{Workers: 1})
	for ti := 0; ti < 4; ti++ {
		tgt := synthBBS(rng, "t")
		ms := eng.Scan(tgt)
		ref := exact.Scan(tgt)
		if len(ms) != len(models) {
			t.Fatalf("got %d matches", len(ms))
		}
		best := bestOf(ms)
		if best.Pruned {
			t.Fatal("approximate best match reported pruned — estimates outranked the exact winner")
		}
		for i, m := range ms {
			if !m.Pruned && m.Score != ref[i].Score {
				t.Fatalf("entry %d scored %v, exact %v", i, m.Score, ref[i].Score)
			}
		}
	}
}

// TestIndexedExtendViaConfig: seeding a new engine with the previous
// index (the Repository.Add incremental path) extends instead of
// rebuilding, and best-identity still holds.
func TestIndexedExtendViaConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	models := synthModels(rng, 30)
	first := New(models, Config{Workers: 1, Prune: true, Index: true})
	if first.Index() == nil || first.Index().Extended != 0 {
		t.Fatal("first engine index not a fresh build")
	}
	grown := append(append([]*model.CSTBBS(nil), models...), synthModels(rng, 8)...)
	second := New(grown, Config{Workers: 1, Prune: true, Index: true, IndexFrom: first.Index()})
	if got := second.Index().Extended; got != 8 {
		t.Fatalf("Extended = %d, want 8", got)
	}
	exact := New(grown, Config{Workers: 1})
	for ti := 0; ti < 4; ti++ {
		tgt := synthBBS(rng, "t")
		want, got := bestOf(exact.Scan(tgt)), bestOf(second.Scan(tgt))
		if got.Index != want.Index || got.Score != want.Score {
			t.Fatalf("extended-index best (%d, %v), want (%d, %v)", got.Index, got.Score, want.Index, want.Score)
		}
	}
}

// synthFamilies builds a family-structured corpus: nFam base models,
// each with perFam near-duplicate variants (one cache state nudged), so
// clusters are tight and the index's skip gate has something to bite
// on — the shape the index targets in production.
func synthFamilies(rng *rand.Rand, nFam, perFam int) []*model.CSTBBS {
	var out []*model.CSTBBS
	for f := 0; f < nFam; f++ {
		base := synthBBS(rng, fmt.Sprintf("fam%d", f))
		for v := 0; v < perFam; v++ {
			m := &model.CSTBBS{Name: fmt.Sprintf("fam%d-v%d", f, v), Seq: append([]model.CST(nil), base.Seq...), TimerReads: 1}
			i := rng.Intn(len(m.Seq))
			m.Seq[i].After.AO += float64(rng.Intn(3)) * 0.25
			out = append(out, m)
		}
	}
	return out
}

func TestIndexedTelemetry(t *testing.T) {
	tel := telemetry.NewCollector()
	rng := rand.New(rand.NewSource(5))
	models := synthFamilies(rng, 6, 8)
	eng := New(models, Config{Workers: 1, Prune: true, Index: true, IndexClusters: 6, Telemetry: tel})
	if got := tel.Counter(telemetry.IndexRebuilds); got != 1 {
		t.Fatalf("index_rebuilds = %d, want 1", got)
	}
	for i := 0; i < 6; i++ {
		tgt := models[rng.Intn(len(models))] // in-family target: tight best, far clusters gate out
		eng.Scan(&model.CSTBBS{Name: "t", Seq: tgt.Seq, TimerReads: 1})
	}
	desc := tel.Counter(telemetry.IndexClustersDescended)
	skip := tel.Counter(telemetry.IndexClustersSkipped)
	if desc == 0 {
		t.Error("index_clusters_descended never fired")
	}
	if skip == 0 {
		t.Error("index_clusters_skipped never fired over 6 scans")
	}
	snap := tel.Snapshot()
	if snap.Gauges["index"]["clusters"] == 0 {
		t.Errorf("index gauge group missing: %v", snap.Gauges)
	}
}

// FuzzIndexDescend hunts for targets/repositories where the indexed
// descent loses the true best match — the bit-identity claim under
// fuzzed model shapes.
func FuzzIndexDescend(f *testing.F) {
	f.Add(int64(1), uint8(20), uint8(0), int64(2))
	f.Add(int64(3), uint8(40), uint8(3), int64(4))
	f.Add(int64(5), uint8(9), uint8(9), int64(6))
	f.Fuzz(func(t *testing.T, seed int64, n, k uint8, tseed int64) {
		nm := 2 + int(n)%60
		rng := rand.New(rand.NewSource(seed))
		models := synthModels(rng, nm)
		exact := New(models, Config{Workers: 1})
		eng := New(models, Config{Workers: 1, Prune: true, Index: true, IndexClusters: int(k) % (nm + 1)})
		tgt := synthBBS(rand.New(rand.NewSource(tseed)), "t")
		want := bestOf(exact.Scan(tgt))
		got := bestOf(eng.Scan(tgt))
		if got.Index != want.Index || got.Score != want.Score {
			t.Fatalf("indexed best (%d, %v), exact best (%d, %v)", got.Index, got.Score, want.Index, want.Score)
		}
	})
}

// TestIndexedScanBestIdentityMutated runs the best-identity property
// over mutation-generated repositories — real modeled attack variants
// (internal/dataset + internal/model), not synthetic CST-BBSes. The
// mutated variants of one PoC form genuinely tight clusters with the
// occasional outlier, the structure the gate-then-certify descent has
// to get right in production.
func TestIndexedScanBestIdentityMutated(t *testing.T) {
	if testing.Short() {
		t.Skip("modeling a mutated corpus is slow for -short")
	}
	var models []*model.CSTBBS
	for _, fam := range []attacks.Family{attacks.FamilyFR, attacks.FamilyPP} {
		samples, err := dataset.AttackSamples(fam, 10, 17, false)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range samples {
			m, err := model.Build(s.Program, s.Victim, model.DefaultConfig())
			if err != nil {
				t.Fatalf("modeling %s: %v", s.Name, err)
			}
			models = append(models, m.BBS)
		}
	}

	// Targets: an in-repository variant, a fresh mutated variant of a
	// known family, and a variant of a family the repo also holds.
	fresh, err := dataset.AttackSamples(attacks.FamilyFR, 3, 99, false)
	if err != nil {
		t.Fatal(err)
	}
	targets := []*model.CSTBBS{models[3], models[len(models)-1]}
	for _, s := range fresh {
		m, err := model.Build(s.Program, s.Victim, model.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		targets = append(targets, m.BBS)
	}

	exact := New(models, Config{Workers: 1})
	for _, clusters := range []int{0, 3, 8} {
		eng := New(models, Config{Workers: 1, Prune: true, Index: true, IndexClusters: clusters})
		for ti, tgt := range targets {
			want, got := bestOf(exact.Scan(tgt)), bestOf(eng.Scan(tgt))
			if got.Index != want.Index || got.Score != want.Score || got.Pruned {
				t.Fatalf("clusters=%d target %d: indexed best (%d, %v, pruned=%v), exact (%d, %v)",
					clusters, ti, got.Index, got.Score, got.Pruned, want.Index, want.Score)
			}
		}
	}
}
