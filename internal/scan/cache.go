package scan

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/textdist"
)

// noID marks a basic block that could not be interned (cache full); its
// distances are computed directly and never memoized.
const noID = ^uint32(0)

// Interning and memoization caps. Both are far above anything the
// repository corpus produces; they exist so a pathological stream of
// unique targets cannot grow the cache without bound. Once a cap is
// reached the cache degrades to pass-through computation.
//
// maxInterned must stay strictly below noID (2^32-1): ids are dense
// uint32s and noID is the reserved "not interned" sentinel, so the id
// space holds at most 2^32-1 distinct blocks. Raising the cap past
// that would silently wrap ids and alias distinct blocks — nextInternID
// fails loudly (typed panic) long before that can corrupt a distance.
const (
	maxInterned = 1 << 20 // distinct basic-block instruction sequences
	maxMemoized = 1 << 22 // distinct block pairs
)

// InternOverflowError is the panic value raised if the DistCache id
// space (2^32-1 blocks; noID is reserved) would be exhausted. It is
// unreachable while maxInterned < noID holds — the panic exists so a
// future cap raise past the uint32 limit fails loudly on the first
// overflowing intern instead of silently aliasing blocks.
type InternOverflowError struct {
	// Interned is the number of blocks already interned when the
	// overflow was detected.
	Interned int
}

func (e *InternOverflowError) Error() string {
	return fmt.Sprintf("scan: DistCache intern id space exhausted: %d blocks interned, uint32 ids (noID reserved) allow at most %d — lower maxInterned below 2^32-1", e.Interned, uint64(noID))
}

// nextInternID returns the dense id for the n-th interned block,
// panicking with *InternOverflowError when n collides with the noID
// sentinel or would wrap uint32.
func nextInternID(n int) uint32 {
	if uint64(n) >= uint64(noID) {
		panic(&InternOverflowError{Interned: n})
	}
	return uint32(n)
}

// DistCache memoizes the normalized-instruction Levenshtein distances
// (D_IS) that dominate CST-BBS comparison. Basic blocks repeat heavily —
// a probe loop appears in every Prime+Probe variant, a flush block in
// every Flush+Reload mutant — so the same Levenshtein computation would
// otherwise run once per DTW cell, per repository entry, per scan.
//
// Blocks are interned to dense uint32 ids keyed on a collision-free
// (length-prefixed) join of the normalized instruction strings; pair
// distances are then memoized under the canonical (min,max) id pair,
// exploiting the symmetry of the Levenshtein distance. All methods are
// safe for concurrent use; values are pure functions of their inputs, so
// a racing double-compute is harmless.
//
// The cache is deliberately independent of the similarity Options: it
// stores raw D_IS values only, never weighted sums, so one cache serves
// every detector and every weight configuration sharing a repository.
type DistCache struct {
	mu    sync.RWMutex
	ids   map[string]uint32
	dists map[uint64]float64

	// Hit/miss counters (atomic, always on: two uncontended atomic adds
	// are noise next to the map lookups they count). A "hit" is a value
	// served without running the Levenshtein computation — including the
	// identical-id short-cut; a "miss" is a computed value, whether or
	// not it could be stored.
	blockHits, blockMisses atomic.Uint64
	pairHits, pairMisses   atomic.Uint64
}

// NewDistCache returns an empty cache.
func NewDistCache() *DistCache {
	return &DistCache{
		ids:   make(map[string]uint32),
		dists: make(map[uint64]float64),
	}
}

// blockKey builds a collision-free string key for a normalized
// instruction sequence: each token is length-prefixed, so no choice of
// token contents can make two distinct sequences collide.
func blockKey(seq []string) string {
	var b strings.Builder
	for _, s := range seq {
		b.WriteString(strconv.Itoa(len(s)))
		b.WriteByte(':')
		b.WriteString(s)
	}
	return b.String()
}

// intern maps a normalized instruction sequence to a stable dense id,
// creating one if needed. Equal sequences always receive equal ids;
// returns noID when the intern table is full.
func (c *DistCache) intern(seq []string) uint32 {
	k := blockKey(seq)
	c.mu.RLock()
	id, ok := c.ids[k]
	c.mu.RUnlock()
	if ok {
		c.blockHits.Add(1)
		return id
	}
	c.blockMisses.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if id, ok := c.ids[k]; ok {
		return id
	}
	if len(c.ids) >= maxInterned {
		return noID
	}
	id = nextInternID(len(c.ids))
	c.ids[k] = id
	return id
}

// normalized returns textdist.Normalized(sa, sb), memoized under the
// interned ids when both blocks are interned. Identical ids short-cut to
// 0 (the distance of a sequence to itself).
func (c *DistCache) normalized(ia uint32, sa []string, ib uint32, sb []string) float64 {
	if ia == noID || ib == noID {
		c.pairMisses.Add(1)
		return textdist.Normalized(sa, sb)
	}
	if ia == ib {
		c.pairHits.Add(1)
		return 0
	}
	lo, hi := ia, ib
	if lo > hi {
		lo, hi = hi, lo
	}
	k := uint64(lo)<<32 | uint64(hi)
	c.mu.RLock()
	v, ok := c.dists[k]
	c.mu.RUnlock()
	if ok {
		c.pairHits.Add(1)
		return v
	}
	c.pairMisses.Add(1)
	v = textdist.Normalized(sa, sb)
	c.mu.Lock()
	if len(c.dists) < maxMemoized {
		c.dists[k] = v
	}
	c.mu.Unlock()
	return v
}

// normalizedFlat is normalized over the flattened symbol form: the same
// memo map, the same (min,max)-id keys and the same hit/miss counters,
// but a miss computes the Levenshtein over interned symbols
// (textdist.Scratch.NormalizedU32) in caller-owned scratch rows —
// bit-identical to the string computation under the injective symbol
// mapping, allocation-free when the pair is already memoized. Both
// blocks must be interned; callers route noID blocks to normalized.
func (c *DistCache) normalizedFlat(ia uint32, sa []uint32, ib uint32, sb []uint32, s *textdist.Scratch) float64 {
	if ia == ib {
		c.pairHits.Add(1)
		return 0
	}
	lo, hi := ia, ib
	if lo > hi {
		lo, hi = hi, lo
	}
	k := uint64(lo)<<32 | uint64(hi)
	c.mu.RLock()
	v, ok := c.dists[k]
	c.mu.RUnlock()
	if ok {
		c.pairHits.Add(1)
		return v
	}
	c.pairMisses.Add(1)
	v = s.NormalizedU32(sa, sb)
	c.mu.Lock()
	if len(c.dists) < maxMemoized {
		c.dists[k] = v
	}
	c.mu.Unlock()
	return v
}

// Stats reports the number of interned blocks and memoized pair
// distances, for diagnostics and tests.
func (c *DistCache) Stats() (blocks, pairs int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.ids), len(c.dists)
}

// CacheStats is the detailed view of a DistCache: sizes plus hit/miss
// counters for both the intern table (blocks) and the pair memo.
type CacheStats struct {
	Blocks, Pairs          int
	BlockHits, BlockMisses uint64
	PairHits, PairMisses   uint64
}

// StatsDetail extends Stats with the hit/miss counters the telemetry
// layer exports as gauges.
func (c *DistCache) StatsDetail() CacheStats {
	blocks, pairs := c.Stats()
	return CacheStats{
		Blocks:      blocks,
		Pairs:       pairs,
		BlockHits:   c.blockHits.Load(),
		BlockMisses: c.blockMisses.Load(),
		PairHits:    c.pairHits.Load(),
		PairMisses:  c.pairMisses.Load(),
	}
}

// TelemetryGauges adapts StatsDetail to a telemetry gauge source;
// register it under the "distcache" name so the derived hit rates and
// the -stats report pick it up.
func (c *DistCache) TelemetryGauges() map[string]uint64 {
	st := c.StatsDetail()
	return map[string]uint64{
		"blocks":       uint64(st.Blocks),
		"pairs":        uint64(st.Pairs),
		"block_hits":   st.BlockHits,
		"block_misses": st.BlockMisses,
		"pair_hits":    st.PairHits,
		"pair_misses":  st.PairMisses,
	}
}
