package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/breaker"
	"repro/internal/faultinject"
	"repro/internal/model"
	"repro/internal/scan"
	"repro/internal/telemetry"
)

// Config tunes a Coordinator.
type Config struct {
	// ShardTimeout, when positive, bounds each shard's share of one
	// scan: a shard that exceeds it fails with DeadlineExceeded and the
	// scan degrades to partial results instead of waiting. It nests
	// inside the caller's context (the earlier deadline wins). With
	// replica groups it bounds the whole group — attempts, failovers
	// and all; AttemptTimeout bounds each individual replica attempt.
	ShardTimeout time.Duration
	// AttemptTimeout, when positive, bounds each replica attempt inside
	// a replica group, so a slow replica fails over instead of eating
	// the whole ShardTimeout. Ignored by plain (ungrouped) shards.
	AttemptTimeout time.Duration
	// Breaker tunes the per-replica circuit breakers of replica groups
	// (zero value = breaker defaults; Threshold -1 disables breaking).
	// Ignored by plain shards.
	Breaker breaker.Settings
	// ProbeInterval, when positive, starts a background health prober
	// (internal/breaker) over every remote replica: quarantined
	// backends are re-probed via /healthz and re-admitted within one
	// interval of recovering. 0 leaves re-admission to the breakers'
	// own half-open scan probes. The prober goroutine lives until
	// Close.
	ProbeInterval time.Duration
	// Telemetry optionally records the scatter–gather counters
	// (shard_scans, shard_scan_failures, shard_degraded_scans,
	// shard_failovers, the breaker transition counters, the shard_scan
	// latency histogram). nil disables instrumentation.
	Telemetry *telemetry.Collector
}

// Coordinator scatters targets across shards and gathers the per-shard
// matches back into one globally-indexed result. It is safe for
// concurrent use; shards are never mutated after construction.
type Coordinator struct {
	shards []Shard
	index  [][]int // shard → local index → global index
	total  int
	cfg    Config
	stats  []coordStats
	prober *breaker.Prober // nil unless ProbeInterval wired a prober
}

// coordStats is the per-shard counter block behind Stats.
type coordStats struct {
	scans    atomic.Uint64
	failures atomic.Uint64
	totalNS  atomic.Uint64
}

// NewCoordinator assembles a coordinator over shards, where index[i]
// maps shard i's local entry positions to global repository indices
// (Router.Partition's output). Every global index must be covered
// exactly once and each shard's Len must match its index slice.
func NewCoordinator(shards []Shard, index [][]int, cfg Config) (*Coordinator, error) {
	if len(shards) == 0 {
		return nil, errors.New("shard: coordinator needs at least one shard")
	}
	if len(shards) != len(index) {
		return nil, fmt.Errorf("shard: %d shards with %d index slices", len(shards), len(index))
	}
	total := 0
	for i, s := range shards {
		if s.Len() != len(index[i]) {
			return nil, fmt.Errorf("shard: shard %s holds %d entries, index maps %d — partition mismatch (same repository and policy on both sides?)",
				s.Name(), s.Len(), len(index[i]))
		}
		total += len(index[i])
	}
	seen := make([]bool, total)
	for i := range index {
		for _, g := range index[i] {
			if g < 0 || g >= total || seen[g] {
				return nil, fmt.Errorf("shard: global index %d out of range or duplicated in shard %s", g, shards[i].Name())
			}
			seen[g] = true
		}
	}
	return &Coordinator{shards: shards, index: index, total: total, cfg: cfg, stats: make([]coordStats, len(shards))}, nil
}

// Len returns the number of repository entries across all shards.
func (c *Coordinator) Len() int { return c.total }

// Shards returns how many shards the coordinator scatters over.
func (c *Coordinator) Shards() int { return len(c.shards) }

// ScanCtx scatters one target to every shard concurrently and gathers
// the matches into ascending global-index order. All shards share one
// pruning cutoff, so in pruned configurations the running global best
// tightens every shard's early abandoning as it improves (local shards
// see updates instantly through the shared cell; remote shards receive
// broadcast pushes).
//
// When every shard succeeds the result covers every repository entry —
// in exact mode bit-identically to a single engine's Scan. When some
// shards fail (timeout, dead remote, injected fault), the surviving
// shards' matches are still returned, in order, alongside a
// *PartialError naming the failures; a context error on the
// coordinator's own ctx is returned as-is with the matches discarded.
func (c *Coordinator) ScanCtx(ctx context.Context, bbs *model.CSTBBS) ([]scan.Match, error) {
	cut := scan.NewCutoff()
	tel := c.cfg.Telemetry
	perShard := make([][]scan.Match, len(c.shards))
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	wg.Add(len(c.shards))
	for i, s := range c.shards {
		go func(i int, s Shard) {
			defer wg.Done()
			tel.Inc(telemetry.ShardScans)
			c.stats[i].scans.Add(1)
			start := tel.Now()
			perShard[i], errs[i] = c.scanShard(ctx, s, bbs, cut)
			tel.ObserveSince(telemetry.StageShardScan, start)
			if !start.IsZero() {
				c.stats[i].totalNS.Add(uint64(time.Since(start).Nanoseconds()))
			}
			if errs[i] != nil {
				tel.Inc(telemetry.ShardScanFailures)
				c.stats[i].failures.Add(1)
			}
		}(i, s)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return c.gather(perShard, errs)
}

// scanShard runs one shard's share of a scan under the per-shard
// timeout and the shard.scan failpoint.
func (c *Coordinator) scanShard(ctx context.Context, s Shard, bbs *model.CSTBBS, cut *scan.Cutoff) ([]scan.Match, error) {
	if err := faultinject.Fire(faultinject.ShardScan, s.Name()); err != nil {
		return nil, err
	}
	if c.cfg.ShardTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.cfg.ShardTimeout)
		defer cancel()
	}
	ms, err := s.Scan(ctx, bbs, cut)
	if err != nil {
		return nil, err
	}
	if len(ms) != s.Len() {
		return nil, fmt.Errorf("shard %s returned %d matches for %d entries", s.Name(), len(ms), s.Len())
	}
	return ms, nil
}

// gather remaps per-shard matches to global indices, sorts them into
// global order and converts shard failures into a *PartialError.
func (c *Coordinator) gather(perShard [][]scan.Match, errs []error) ([]scan.Match, error) {
	out := make([]scan.Match, 0, c.total)
	var failed []*ShardError
	for i := range c.shards {
		if errs[i] != nil {
			failed = append(failed, &ShardError{Shard: c.shards[i].Name(), Entries: c.shards[i].Len(), Err: errs[i]})
			continue
		}
		for local, m := range perShard[i] {
			m.Index = c.index[i][local]
			out = append(out, m)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Index < out[b].Index })
	if len(failed) > 0 {
		c.cfg.Telemetry.Inc(telemetry.ShardDegradedScans)
		missing := 0
		for _, f := range failed {
			missing += f.Entries
		}
		return out, &PartialError{Failed: failed, Missing: missing}
	}
	return out, nil
}

// ScanBatchCtx scans targets one after another, each scattered across
// all shards (each target already saturates the shard engines' worker
// pools, so batching adds sequencing, not parallelism). results[t] is
// target t's globally-indexed matches. A context error aborts the
// batch; shard failures degrade only the affected targets, and the
// joined *PartialError(s) report them while every other target's
// results stay complete.
func (c *Coordinator) ScanBatchCtx(ctx context.Context, targets []*model.CSTBBS) ([][]scan.Match, error) {
	results := make([][]scan.Match, len(targets))
	var partials []error
	for t, bbs := range targets {
		ms, err := c.ScanCtx(ctx, bbs)
		if err != nil {
			var pe *PartialError
			if errors.As(err, &pe) {
				results[t] = ms
				partials = append(partials, err)
				continue
			}
			return results, err
		}
		results[t] = ms
	}
	return results, errors.Join(partials...)
}

// ShardStats is one shard's cumulative scatter–gather counters.
type ShardStats struct {
	Name     string
	Entries  int
	Scans    uint64
	Failures uint64
	// TotalLatency is the summed wall time of this shard's scans
	// (recorded only when telemetry is attached, like the histogram).
	TotalLatency time.Duration
}

// Stats reports per-shard counters for diagnostics and gauges.
func (c *Coordinator) Stats() []ShardStats {
	out := make([]ShardStats, len(c.shards))
	for i, s := range c.shards {
		out[i] = ShardStats{
			Name:         s.Name(),
			Entries:      s.Len(),
			Scans:        c.stats[i].scans.Load(),
			Failures:     c.stats[i].failures.Load(),
			TotalLatency: time.Duration(c.stats[i].totalNS.Load()),
		}
	}
	return out
}

// TelemetryGauges adapts Stats to a telemetry gauge source; register it
// under the "shards" name so snapshots carry per-shard scan/failure
// counts alongside the aggregate counters.
func (c *Coordinator) TelemetryGauges() map[string]uint64 {
	out := make(map[string]uint64, 4*len(c.shards))
	for i, st := range c.Stats() {
		prefix := fmt.Sprintf("shard%d_", i)
		out[prefix+"entries"] = uint64(st.Entries)
		out[prefix+"scans"] = st.Scans
		out[prefix+"failures"] = st.Failures
		out[prefix+"latency_ms"] = uint64(st.TotalLatency.Milliseconds())
	}
	return out
}

// breakers walks the fleet and returns every replica breaker, keyed by
// backend name. Empty for ungrouped (local) fleets.
func (c *Coordinator) breakers() map[string]*breaker.Breaker {
	out := make(map[string]*breaker.Breaker)
	for _, s := range c.shards {
		g, ok := s.(*ReplicaGroup)
		if !ok {
			continue
		}
		for _, b := range g.Breakers() {
			out[b.Name()] = b
		}
	}
	return out
}

// BreakerStates reports each replica backend's current breaker state,
// keyed by backend name (the replica address for remote fleets). Empty
// when the fleet has no replica groups.
func (c *Coordinator) BreakerStates() map[string]breaker.State {
	brks := c.breakers()
	out := make(map[string]breaker.State, len(brks))
	for name, b := range brks {
		out[name] = b.State()
	}
	return out
}

// BreakerGauges adapts the per-backend breaker state to a telemetry
// gauge source; register it under the "breakers" name. Each backend
// contributes <name>_state (0 closed, 1 open, 2 half-open) and
// <name>_opens (cumulative trips).
func (c *Coordinator) BreakerGauges() map[string]uint64 {
	brks := c.breakers()
	out := make(map[string]uint64, 2*len(brks))
	for name, b := range brks {
		out[name+"_state"] = uint64(b.State())
		out[name+"_opens"] = b.Opens()
	}
	return out
}

// Close releases the coordinator's background resources: it stops the
// health prober started by Config.ProbeInterval and drops the remote
// shards' pooled keep-alive connections (sockets and their transport
// goroutines would otherwise linger until the transport's idle
// timeout). Idempotent, nil-safe and safe on a coordinator that never
// started a prober; scans already in flight are unaffected (breakers
// keep working, they just lose background re-admission).
func (c *Coordinator) Close() {
	if c == nil {
		return
	}
	c.prober.Stop()
	for _, s := range c.shards {
		switch sh := s.(type) {
		case *RemoteShard:
			sh.CloseIdleConnections()
		case *ReplicaGroup:
			sh.CloseIdleConnections()
		}
	}
}
