package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/faultinject"
	"repro/internal/model"
	"repro/internal/retry"
	"repro/internal/scan"
	"repro/internal/similarity"
	"repro/internal/telemetry"
)

// corpus builds n deterministic models drawing blocks from a small
// vocabulary, so block pairs repeat across shards (the DistCache
// workload) and scores collide often enough to exercise ordering.
func corpus(rng *rand.Rand, n int) []*model.CSTBBS {
	vocab := [][]string{
		{"clflush mem"},
		{"mov reg, mem", "rdtscp reg"},
		{"mov reg, mem", "add reg, imm", "cmp reg, imm"},
		{"rdtscp reg", "mov reg, mem", "rdtscp reg", "sub reg, reg"},
		{"add reg, imm"},
		{"mov reg, mem"},
	}
	out := make([]*model.CSTBBS, n)
	for i := range out {
		b := &model.CSTBBS{Name: fmt.Sprintf("m%03d", i), TimerReads: 1}
		for k, kn := 0, 1+rng.Intn(8); k < kn; k++ {
			d := float64(rng.Intn(10)) / 16
			b.Seq = append(b.Seq, model.CST{
				NormInsns: vocab[rng.Intn(len(vocab))],
				Before:    cache.State{AO: 0, IO: 1},
				After:     cache.State{AO: d, IO: 1 - d},
			})
		}
		out[i] = b
	}
	return out
}

func scanEqual(t *testing.T, tag string, got, want []scan.Match) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d matches, want %d", tag, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: match %d = %+v, want %+v", tag, i, got[i], want[i])
		}
	}
}

// bestOf returns the winning (index, exact score) of an exact match
// list.
func bestOf(ms []scan.Match) (int, float64) {
	bi, bs := -1, math.Inf(-1)
	for _, m := range ms {
		if m.Score > bs {
			bi, bs = m.Index, m.Score
		}
	}
	return bi, bs
}

// TestRouterPartitionCoversEveryEntryOnce: both policies yield a
// partition of 0..n-1, with ascending per-shard slices.
func TestRouterPartitionCoversEveryEntryOnce(t *testing.T) {
	models := corpus(rand.New(rand.NewSource(3)), 41)
	names := make([]string, len(models))
	for i, m := range models {
		names[i] = m.Name
	}
	for _, pol := range []Policy{PolicyHash, PolicyRoundRobin} {
		for _, n := range []int{1, 2, 7} {
			parts := Router{Shards: n, Policy: pol}.Partition(names)
			if len(parts) != n {
				t.Fatalf("%v/%d: %d parts", pol, n, len(parts))
			}
			seen := make(map[int]bool)
			for _, part := range parts {
				for i, g := range part {
					if i > 0 && part[i-1] >= g {
						t.Fatalf("%v/%d: shard slice not ascending: %v", pol, n, part)
					}
					if seen[g] {
						t.Fatalf("%v/%d: index %d assigned twice", pol, n, g)
					}
					seen[g] = true
				}
			}
			if len(seen) != len(names) {
				t.Fatalf("%v/%d: %d of %d indices covered", pol, n, len(seen), len(names))
			}
		}
	}
}

// TestRouterRendezvousRebalance: growing from 5 to 6 shards must move
// only a small fraction of entries under the hash policy (the point of
// rendezvous hashing; the expectation is 1/6).
func TestRouterRendezvousRebalance(t *testing.T) {
	const n = 600
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("entry-%04d", i)
	}
	moved := 0
	for i, name := range names {
		if (Router{Shards: 5}).Assign(name, i) != (Router{Shards: 6}).Assign(name, i) {
			moved++
		}
	}
	if frac := float64(moved) / n; frac > 0.35 {
		t.Fatalf("rendezvous moved %.0f%% of entries on 5→6 resize, want ~17%%", frac*100)
	}
	if moved == 0 {
		t.Fatal("resize moved nothing — hash ignores shard count?")
	}
}

func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]Policy{"": PolicyHash, "hash": PolicyHash, "rr": PolicyRoundRobin, "round-robin": PolicyRoundRobin} {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParsePolicy("modulo"); err == nil {
		t.Error("ParsePolicy accepted garbage")
	}
}

// TestShardedExactBitIdenticalLocal: the headline differential — the
// sharded exact scan is bit-identical (Match struct equality, == on
// the float scores) to a single engine's scan, at 1, 2 and 7 local
// shards under both policies, including shard counts that leave some
// shards empty.
func TestShardedExactBitIdenticalLocal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, size := range []int{5, 19} { // 5 models over 7 shards → empty shards
		models := corpus(rng, size)
		ref := scan.New(models, scan.Config{Sim: similarity.DefaultOptions()})
		targets := corpus(rng, 4)
		for _, n := range []int{1, 2, 7} {
			for _, pol := range []Policy{PolicyHash, PolicyRoundRobin} {
				co, err := NewLocalCoordinator(models, Router{Shards: n, Policy: pol},
					scan.Config{Sim: similarity.DefaultOptions()}, Config{})
				if err != nil {
					t.Fatalf("size=%d n=%d %v: %v", size, n, pol, err)
				}
				if co.Len() != size {
					t.Fatalf("size=%d n=%d: coordinator Len %d", size, n, co.Len())
				}
				for ti, target := range targets {
					got, err := co.ScanCtx(context.Background(), target)
					if err != nil {
						t.Fatalf("size=%d n=%d %v target %d: %v", size, n, pol, ti, err)
					}
					scanEqual(t, fmt.Sprintf("size=%d n=%d %v target %d", size, n, pol, ti), got, ref.Scan(target))
				}
			}
		}
	}
}

// startServers launches one loopback HTTP shard server per router
// slice and returns their addresses in shard order.
func startServers(t *testing.T, models []*model.CSTBBS, r Router, cfg ServerConfig) []string {
	t.Helper()
	addrs := make([]string, r.Shards)
	for i := range addrs {
		srv := httptest.NewServer(NewServer(ShardModels(models, r, i), cfg).Handler())
		t.Cleanup(srv.Close)
		addrs[i] = srv.URL
	}
	return addrs
}

// TestShardedExactBitIdenticalRemote: the same differential over real
// HTTP — JSON float round-tripping included — at 1, 2 and 7 loopback
// shard servers.
func TestShardedExactBitIdenticalRemote(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	models := corpus(rng, 17)
	ref := scan.New(models, scan.Config{Sim: similarity.DefaultOptions()})
	targets := corpus(rng, 3)
	for _, n := range []int{1, 2, 7} {
		r := Router{Shards: n}
		addrs := startServers(t, models, r, ServerConfig{})
		co, err := NewRemoteCoordinator(models, addrs, r,
			scan.Config{Sim: similarity.DefaultOptions()}, RemoteConfig{}, Config{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for ti, target := range targets {
			got, err := co.ScanCtx(context.Background(), target)
			if err != nil {
				t.Fatalf("n=%d target %d: %v", n, ti, err)
			}
			scanEqual(t, fmt.Sprintf("n=%d target %d", n, ti), got, ref.Scan(target))
		}
	}
}

// TestShardedPrunedBestExact: with pruning on across shards and the
// shared cutoff broadcasting the global best, the winning match must
// stay exact — same winner score as the exact reference — locally and
// over HTTP.
func TestShardedPrunedBestExact(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	models := corpus(rng, 23)
	ref := scan.New(models, scan.Config{Sim: similarity.DefaultOptions()})
	targets := corpus(rng, 4)
	scfg := scan.Config{Prune: true, Sim: similarity.DefaultOptions()}

	r := Router{Shards: 3}
	local, err := NewLocalCoordinator(models, r, scfg, Config{})
	if err != nil {
		t.Fatal(err)
	}
	remote, err := NewRemoteCoordinator(models, startServers(t, models, r, ServerConfig{}), r, scfg, RemoteConfig{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		co   *Coordinator
	}{{"local", local}, {"remote", remote}} {
		for ti, target := range targets {
			got, err := tc.co.ScanCtx(context.Background(), target)
			if err != nil {
				t.Fatalf("%s target %d: %v", tc.name, ti, err)
			}
			want := ref.Scan(target)
			_, wantBest := bestOf(want)
			_, gotBest := bestOf(got)
			if gotBest != wantBest {
				t.Fatalf("%s target %d: pruned best %v, exact best %v", tc.name, ti, gotBest, wantBest)
			}
			for _, m := range got {
				// Pruned scores are upper bounds; exact ones must match
				// the reference bit-for-bit.
				if m.Score < want[m.Index].Score && m.Pruned {
					t.Fatalf("%s target %d entry %d: pruned score %v below exact %v (not an upper bound)",
						tc.name, ti, m.Index, m.Score, want[m.Index].Score)
				}
				if !m.Pruned && m.Score != want[m.Index].Score {
					t.Fatalf("%s target %d entry %d: exact score %v != reference %v",
						tc.name, ti, m.Index, m.Score, want[m.Index].Score)
				}
			}
		}
	}
}

// TestCoordinatorPartialOnShardFault: a shard.scan fault on one local
// shard degrades the scan — surviving shards' matches intact and
// globally ordered, a *PartialError naming the dead shard, telemetry
// counting the degradation.
func TestCoordinatorPartialOnShardFault(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	rng := rand.New(rand.NewSource(41))
	models := corpus(rng, 15)
	ref := scan.New(models, scan.Config{Sim: similarity.DefaultOptions()})
	target := corpus(rng, 1)[0]
	tel := telemetry.NewCollector()
	r := Router{Shards: 3}
	co, err := NewLocalCoordinator(models, r, scan.Config{Sim: similarity.DefaultOptions()}, Config{Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("shard down")
	faultinject.Enable(faultinject.ShardScan, faultinject.Match("1", faultinject.Error(boom)))

	got, err := co.ScanCtx(context.Background(), target)
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PartialError", err)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("PartialError does not unwrap to the injected fault: %v", err)
	}
	parts := PartitionModels(models, r)
	if len(pe.Failed) != 1 || pe.Failed[0].Shard != "1" || pe.Missing != len(parts[1]) {
		t.Fatalf("partial = %+v, want shard 1 with %d entries missing", pe, len(parts[1]))
	}
	if len(got) != len(models)-len(parts[1]) {
		t.Fatalf("%d surviving matches, want %d", len(got), len(models)-len(parts[1]))
	}
	want := ref.Scan(target)
	dead := make(map[int]bool)
	for _, g := range parts[1] {
		dead[g] = true
	}
	prev := -1
	for _, m := range got {
		if dead[m.Index] {
			t.Fatalf("match %d came from the dead shard", m.Index)
		}
		if m.Index <= prev {
			t.Fatalf("matches out of global order at index %d", m.Index)
		}
		prev = m.Index
		if m != want[m.Index] {
			t.Fatalf("surviving match %d = %+v, want %+v", m.Index, m, want[m.Index])
		}
	}
	if n := tel.Counter(telemetry.ShardDegradedScans); n != 1 {
		t.Errorf("ShardDegradedScans = %d, want 1", n)
	}
	if n := tel.Counter(telemetry.ShardScanFailures); n != 1 {
		t.Errorf("ShardScanFailures = %d, want 1", n)
	}
	if n := tel.Counter(telemetry.ShardScans); n != 3 {
		t.Errorf("ShardScans = %d, want 3", n)
	}

	// The same fault through ScanBatchCtx degrades every target but
	// still reports the partials.
	batch := corpus(rng, 2)
	results, err := co.ScanBatchCtx(context.Background(), batch)
	if !errors.As(err, &pe) {
		t.Fatalf("batch err = %v, want *PartialError", err)
	}
	for ti, ms := range results {
		if len(ms) != len(models)-len(parts[1]) {
			t.Fatalf("batch target %d: %d matches", ti, len(ms))
		}
	}
}

// TestRemoteRetryAbsorbsTransientRPCFault: a shard.remote.rpc fault on
// the first /scan attempt is retried away by the policy and counted in
// telemetry; the result is still bit-identical.
func TestRemoteRetryAbsorbsTransientRPCFault(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	rng := rand.New(rand.NewSource(43))
	models := corpus(rng, 9)
	ref := scan.New(models, scan.Config{Sim: similarity.DefaultOptions()})
	target := corpus(rng, 1)[0]
	tel := telemetry.NewCollector()
	r := Router{Shards: 2}
	co, err := NewRemoteCoordinator(models, startServers(t, models, r, ServerConfig{}), r,
		scan.Config{Sim: similarity.DefaultOptions()},
		RemoteConfig{Retry: retry.Policy{Attempts: 2}, Telemetry: tel}, Config{Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(faultinject.ShardRemoteRPC,
		faultinject.Match("/scan", faultinject.OnCall(1, faultinject.Error(errors.New("connection reset")))))

	got, err := co.ScanCtx(context.Background(), target)
	if err != nil {
		t.Fatalf("scan failed despite retry policy: %v", err)
	}
	scanEqual(t, "retried remote scan", got, ref.Scan(target))
	if n := tel.Counter(telemetry.ShardRemoteRetries); n != 1 {
		t.Errorf("ShardRemoteRetries = %d, want 1", n)
	}
	if n := tel.Counter(telemetry.ShardScanFailures); n != 0 {
		t.Errorf("ShardScanFailures = %d, want 0 (the retry absorbed it)", n)
	}
}

// TestRemoteDeadShardDegrades: an address nobody listens on fails that
// shard (after its retries) and the scan returns the live shards'
// matches plus a *PartialError — no hang, no total failure.
func TestRemoteDeadShardDegrades(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	models := corpus(rng, 12)
	target := corpus(rng, 1)[0]
	r := Router{Shards: 2}
	addrs := startServers(t, models, r, ServerConfig{})
	addrs[1] = "127.0.0.1:1" // reserved port: connection refused
	co, err := NewRemoteCoordinator(models, addrs, r,
		scan.Config{Sim: similarity.DefaultOptions()},
		RemoteConfig{Timeout: 2 * time.Second}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := co.ScanCtx(context.Background(), target)
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PartialError", err)
	}
	parts := PartitionModels(models, r)
	if pe.Missing != len(parts[1]) || len(got) != len(parts[0]) {
		t.Fatalf("missing %d matches %d, want %d/%d", pe.Missing, len(got), len(parts[1]), len(parts[0]))
	}
}

// TestRemoteCheckHandshake: Check accepts a server holding the agreed
// slice and rejects one holding a different repository.
func TestRemoteCheckHandshake(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	models := corpus(rng, 10)
	r := Router{Shards: 2}
	addrs := startServers(t, models, r, ServerConfig{})
	parts := PartitionModels(models, r)
	good := NewRemoteShard(addrs[0], len(parts[0]), scan.Config{Sim: similarity.DefaultOptions()}, RemoteConfig{})
	if err := good.Check(context.Background()); err != nil {
		t.Fatalf("Check on agreeing server: %v", err)
	}
	bad := NewRemoteShard(addrs[0], len(parts[0])+1, scan.Config{Sim: similarity.DefaultOptions()}, RemoteConfig{})
	if err := bad.Check(context.Background()); err == nil {
		t.Fatal("Check accepted a slice-size mismatch")
	}
	dead := NewRemoteShard("127.0.0.1:1", 1, scan.Config{Sim: similarity.DefaultOptions()}, RemoteConfig{Timeout: 2 * time.Second})
	if err := dead.Check(context.Background()); err == nil {
		t.Fatal("Check accepted a dead address")
	}
}

// TestCutoffBroadcastReachesServer: while a remote scan is in flight,
// improvements to the shared cutoff are POSTed to the shard server.
// The stub server holds /scan open until a /cutoff arrives, so the
// test deterministically proves the mid-scan push (and its telemetry).
func TestCutoffBroadcastReachesServer(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	target := corpus(rng, 1)[0]
	tel := telemetry.NewCollector()

	gotCutoff := make(chan cutoffRequest, 16)
	mux := http.NewServeMux()
	mux.HandleFunc("/cutoff", func(w http.ResponseWriter, r *http.Request) {
		var req cutoffRequest
		_ = json.NewDecoder(r.Body).Decode(&req)
		select {
		case gotCutoff <- req:
		default:
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/scan", func(w http.ResponseWriter, r *http.Request) {
		var req scanRequest
		_ = json.NewDecoder(r.Body).Decode(&req)
		select { // hold the scan open until a broadcast lands
		case <-gotCutoff:
		case <-time.After(5 * time.Second):
			t.Error("no cutoff broadcast reached the server")
		}
		best := 0.5
		_ = json.NewEncoder(w).Encode(scanResponse{Matches: []wireMatch{{Index: 0, Score: 0.25}}, Best: &best})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	s := NewRemoteShard(srv.URL, 1, scan.Config{Prune: true, Sim: similarity.DefaultOptions()}, RemoteConfig{Telemetry: tel})
	cut := scan.NewCutoff()
	var wg sync.WaitGroup
	wg.Add(1)
	var ms []scan.Match
	var scanErr error
	go func() {
		defer wg.Done()
		ms, scanErr = s.Scan(context.Background(), target, cut)
	}()
	// Keep improving the shared best until the forwarder notices one of
	// the changes; each Update closes the current Changed channel.
	deadline := time.Now().Add(5 * time.Second)
	for best := 100.0; scanDone(&wg) == false && time.Now().Before(deadline); best *= 0.9 {
		cut.Update(best)
		time.Sleep(5 * time.Millisecond)
	}
	wg.Wait()
	if scanErr != nil {
		t.Fatalf("scan: %v", scanErr)
	}
	if len(ms) != 1 || ms[0].Score != 0.25 {
		t.Fatalf("matches = %+v", ms)
	}
	if got := cut.Best(); got > 0.5 {
		t.Errorf("response best not folded into shared cutoff: %v", got)
	}
	if n := tel.Counter(telemetry.ShardCutoffBroadcasts); n == 0 {
		t.Error("ShardCutoffBroadcasts = 0, want > 0")
	}
}

// scanDone polls whether the scan goroutine finished without blocking.
func scanDone(wg *sync.WaitGroup) bool {
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
		return true
	case <-time.After(time.Millisecond):
		return false
	}
}

// TestServerRejectsBadRequests: protocol hygiene — wrong methods and
// malformed bodies get 4xx, /cutoff for unknown scans is a no-op 200.
func TestServerRejectsBadRequests(t *testing.T) {
	srv := httptest.NewServer(NewServer(corpus(rand.New(rand.NewSource(61)), 3), ServerConfig{}).Handler())
	defer srv.Close()
	check := func(tag string, resp *http.Response, err error, want int) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("%s: status %d, want %d", tag, resp.StatusCode, want)
		}
	}
	resp, err := http.Get(srv.URL + "/scan")
	check("GET /scan", resp, err, http.StatusMethodNotAllowed)
	resp, err = http.Post(srv.URL+"/scan", "application/json", strings.NewReader("{garbage"))
	check("malformed POST /scan", resp, err, http.StatusBadRequest)
	resp, err = http.Post(srv.URL+"/cutoff", "application/json", strings.NewReader(`{"id":"nope","best":1}`))
	check("orphan cutoff", resp, err, http.StatusOK)
}

// TestNewCoordinatorValidation: partition mismatches are caught at
// construction, not mid-scan.
func TestNewCoordinatorValidation(t *testing.T) {
	models := corpus(rand.New(rand.NewSource(67)), 4)
	mk := func(part []int) Shard {
		return NewLocalShard("x", sliceModels(models, part), scan.Config{})
	}
	if _, err := NewCoordinator(nil, nil, Config{}); err == nil {
		t.Error("accepted zero shards")
	}
	if _, err := NewCoordinator([]Shard{mk([]int{0, 1})}, [][]int{{0}}, Config{}); err == nil {
		t.Error("accepted Len/index mismatch")
	}
	if _, err := NewCoordinator([]Shard{mk([]int{0, 1}), mk([]int{1, 2})}, [][]int{{0, 1}, {1, 2}}, Config{}); err == nil {
		t.Error("accepted duplicated global index")
	}
	if co, err := NewCoordinator([]Shard{mk([]int{0, 1}), mk([]int{2, 3})}, [][]int{{0, 1}, {2, 3}}, Config{}); err != nil || co.Len() != 4 {
		t.Errorf("rejected a valid partition: %v", err)
	}
}

// TestCoordinatorStatsAndGauges: per-shard counters accumulate and
// surface through the gauge adapter.
func TestCoordinatorStatsAndGauges(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	models := corpus(rng, 8)
	target := corpus(rng, 1)[0]
	tel := telemetry.NewCollector()
	co, err := NewLocalCoordinator(models, Router{Shards: 2}, scan.Config{Sim: similarity.DefaultOptions()}, Config{Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	tel.RegisterGauges("shards", co.TelemetryGauges)
	if _, err := co.ScanCtx(context.Background(), target); err != nil {
		t.Fatal(err)
	}
	for i, st := range co.Stats() {
		if st.Scans != 1 || st.Failures != 0 {
			t.Errorf("shard %d stats = %+v", i, st)
		}
	}
	g := co.TelemetryGauges()
	if g["shard0_scans"] != 1 || g["shard1_scans"] != 1 {
		t.Errorf("gauges = %v", g)
	}
}
