package shard

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/breaker"
	"repro/internal/faultinject"
	"repro/internal/model"
	"repro/internal/scan"
	"repro/internal/similarity"
	"repro/internal/telemetry"
	"repro/internal/vcache"
)

func TestSplitReplicas(t *testing.T) {
	got, err := SplitReplicas("a:1| b:2 |c:3")
	if err != nil || len(got) != 3 || got[0] != "a:1" || got[1] != "b:2" || got[2] != "c:3" {
		t.Fatalf("SplitReplicas = %v, %v", got, err)
	}
	for _, bad := range []string{"", "a||b", "|a"} {
		if _, err := SplitReplicas(bad); err == nil {
			t.Fatalf("SplitReplicas(%q) accepted", bad)
		}
	}
}

func TestNewReplicaGroupValidation(t *testing.T) {
	if _, err := NewReplicaGroup(nil, GroupConfig{}); err == nil {
		t.Fatal("empty replica set accepted")
	}
	rng := rand.New(rand.NewSource(5))
	a := NewLocalShard("a", corpus(rng, 3), scan.Config{})
	b := NewLocalShard("b", corpus(rng, 4), scan.Config{})
	if _, err := NewReplicaGroup([]Shard{a, b}, GroupConfig{}); err == nil {
		t.Fatal("mismatched replica lengths accepted")
	}
	g, err := NewReplicaGroup([]Shard{a}, GroupConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "a" || g.Len() != 3 {
		t.Fatalf("single-replica group Name=%q Len=%d", g.Name(), g.Len())
	}
}

// replicatedFleet builds a coordinator over n partitions × reps
// replicas of loopback HTTP servers, returning the coordinator, the
// per-[shard][replica] servers, and the replica URLs.
func replicatedFleet(t *testing.T, models []*model.CSTBBS, n, reps int, rcfg RemoteConfig, ccfg Config) (*Coordinator, [][]*httptest.Server, [][]string) {
	t.Helper()
	r := Router{Shards: n}
	srvs := make([][]*httptest.Server, n)
	urls := make([][]string, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		srvs[i] = make([]*httptest.Server, reps)
		urls[i] = make([]string, reps)
		for j := 0; j < reps; j++ {
			srv := httptest.NewServer(NewServer(ShardModels(models, r, i), ServerConfig{}).Handler())
			t.Cleanup(srv.Close)
			srvs[i][j] = srv
			urls[i][j] = srv.URL
		}
		addrs[i] = strings.Join(urls[i], "|")
	}
	co, err := NewRemoteCoordinator(models, addrs, r, scan.Config{Sim: similarity.DefaultOptions()}, rcfg, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(co.Close)
	return co, srvs, urls
}

// TestReplicaFailoverKeepsScansComplete: with one replica of a group
// dead, every scan still covers every repository entry bit-identically
// to the single-engine reference — availability loss must not become a
// detection loss.
func TestReplicaFailoverKeepsScansComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	models := corpus(rng, 13)
	ref := scan.New(models, scan.Config{Sim: similarity.DefaultOptions()})
	tel := telemetry.NewCollector()
	co, srvs, _ := replicatedFleet(t, models, 2, 2, RemoteConfig{Timeout: 2 * time.Second}, Config{Telemetry: tel})

	srvs[0][0].Close() // kill the preferred replica of group 0

	target := corpus(rng, 1)[0]
	got, err := co.ScanCtx(context.Background(), target)
	if err != nil {
		t.Fatalf("scan with one dead replica: %v", err)
	}
	scanEqual(t, "failover", got, ref.Scan(target))
	if tel.Counter(telemetry.ShardFailovers) == 0 {
		t.Fatal("shard_failovers not counted")
	}
	if tel.Counter(telemetry.ShardDegradedScans) != 0 {
		t.Fatal("complete failover counted as degraded")
	}
}

// TestReplicaGroupAllDownDegrades: a whole group dark is the only
// condition that degrades a scan — exactly once per scan, with the
// replica failures visible in the error chain.
func TestReplicaGroupAllDownDegrades(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	models := corpus(rng, 11)
	tel := telemetry.NewCollector()
	co, srvs, urls := replicatedFleet(t, models, 2, 2, RemoteConfig{Timeout: time.Second}, Config{Telemetry: tel})

	srvs[1][0].Close()
	srvs[1][1].Close()

	target := corpus(rng, 1)[0]
	ms, err := co.ScanCtx(context.Background(), target)
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PartialError", err)
	}
	if len(pe.Failed) != 1 || pe.Failed[0].Shard != strings.Join(urls[1], "|") {
		t.Fatalf("failed shards = %+v", pe.Failed)
	}
	var ge *GroupError
	if !errors.As(err, &ge) || len(ge.Errs) != 2 {
		t.Fatalf("no 2-replica *GroupError in chain: %v", err)
	}
	var re *ReplicaError
	if !errors.As(err, &re) {
		t.Fatalf("no *ReplicaError in chain: %v", err)
	}
	if got := tel.Counter(telemetry.ShardDegradedScans); got != 1 {
		t.Fatalf("shard_degraded_scans = %d, want exactly 1", got)
	}
	// The surviving group's entries are still present and well-formed.
	if len(ms) == 0 || len(ms)+pe.Missing != len(models) {
		t.Fatalf("%d surviving matches + %d missing != %d entries", len(ms), pe.Missing, len(models))
	}
}

// TestReplicaBreakerSkipsDeadBackend: after the breaker threshold, the
// dead replica is skipped without an RPC attempt — scans keep their
// coverage and stop paying the corpse's timeout.
func TestReplicaBreakerSkipsDeadBackend(t *testing.T) {
	defer faultinject.Reset()
	rng := rand.New(rand.NewSource(37))
	models := corpus(rng, 9)
	tel := telemetry.NewCollector()
	co, srvs, urls := replicatedFleet(t, models, 1, 2,
		RemoteConfig{Timeout: time.Second},
		Config{Telemetry: tel, Breaker: breaker.Settings{Threshold: 2, OpenInterval: time.Minute}})

	srvs[0][0].Close()
	dead := urls[0][0]

	target := corpus(rng, 1)[0]
	for i := 0; i < 2; i++ { // reach the threshold
		if _, err := co.ScanCtx(context.Background(), target); err != nil {
			t.Fatalf("scan %d: %v", i, err)
		}
	}
	if st := co.BreakerStates()[dead]; st != breaker.Open {
		t.Fatalf("dead replica breaker = %v, want open", st)
	}

	// With the breaker open, the dead backend must see no further RPC
	// attempts: the shard.replica.rpc failpoint would fire for its name.
	attempted := false
	faultinject.Enable(faultinject.ShardReplicaRPC, faultinject.Match(dead, func(p faultinject.Point, detail string) error {
		attempted = true
		return nil
	}))
	if _, err := co.ScanCtx(context.Background(), target); err != nil {
		t.Fatalf("post-open scan: %v", err)
	}
	if attempted {
		t.Fatal("open breaker did not prevent the RPC attempt")
	}
	if tel.Counter(telemetry.BreakerOpens) == 0 {
		t.Fatal("breaker_opens not counted")
	}
	gauges := co.BreakerGauges()
	if gauges[dead+"_state"] != uint64(breaker.Open) || gauges[dead+"_opens"] == 0 {
		t.Fatalf("breaker gauges = %v", gauges)
	}
}

// TestReplicaFailpointInjectsFailover: the shard.replica.rpc failpoint
// fails one replica's attempts without touching the network, and the
// group covers it.
func TestReplicaFailpointInjectsFailover(t *testing.T) {
	defer faultinject.Reset()
	rng := rand.New(rand.NewSource(41))
	models := corpus(rng, 7)
	ref := scan.New(models, scan.Config{Sim: similarity.DefaultOptions()})
	tel := telemetry.NewCollector()
	co, _, urls := replicatedFleet(t, models, 1, 2, RemoteConfig{Timeout: time.Second}, Config{Telemetry: tel})

	faultinject.Enable(faultinject.ShardReplicaRPC,
		faultinject.Match(urls[0][0], faultinject.Error(errors.New("injected replica fault"))))
	target := corpus(rng, 1)[0]
	got, err := co.ScanCtx(context.Background(), target)
	if err != nil {
		t.Fatalf("scan under injected fault: %v", err)
	}
	scanEqual(t, "failpoint failover", got, ref.Scan(target))
	if tel.Counter(telemetry.ShardFailovers) != 1 {
		t.Fatalf("shard_failovers = %d, want 1", tel.Counter(telemetry.ShardFailovers))
	}
}

// TestReplicaAttemptTimeoutFailsOver: a replica slower than the
// per-attempt budget loses its attempt and the next replica answers —
// the scan stays complete well inside the whole-group budget.
func TestReplicaAttemptTimeoutFailsOver(t *testing.T) {
	defer faultinject.Reset()
	rng := rand.New(rand.NewSource(43))
	models := corpus(rng, 7)
	ref := scan.New(models, scan.Config{Sim: similarity.DefaultOptions()})
	co, _, urls := replicatedFleet(t, models, 1, 2,
		RemoteConfig{Timeout: 10 * time.Second},
		Config{AttemptTimeout: 50 * time.Millisecond, ShardTimeout: 10 * time.Second})

	// Slow the first replica's attempt past the attempt budget.
	faultinject.Enable(faultinject.ShardReplicaRPC,
		faultinject.Match(urls[0][0], faultinject.Sleep(300*time.Millisecond)))
	target := corpus(rng, 1)[0]
	start := time.Now()
	got, err := co.ScanCtx(context.Background(), target)
	if err != nil {
		t.Fatalf("scan with slow replica: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("failover took %v — attempt timeout not applied", elapsed)
	}
	scanEqual(t, "slow-replica failover", got, ref.Scan(target))
}

// TestCheckDetectsStaleReplica: a replica serving different content
// (same entry count) fails the health handshake once the coordinator
// states its expectation.
func TestCheckDetectsStaleReplica(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	fresh := corpus(rng, 6)
	stale := corpus(rng, 6) // same size, different content

	srv := httptest.NewServer(NewServer(stale, ServerConfig{Version: 7}).Handler())
	defer srv.Close()

	rs := NewRemoteShard(srv.URL, 6, scan.Config{Sim: similarity.DefaultOptions()}, RemoteConfig{})
	if err := rs.Check(context.Background()); err != nil {
		t.Fatalf("entry-count-only check failed: %v", err)
	}
	rs.ExpectContent(7, vcache.SliceHash(fresh))
	err := rs.Check(context.Background())
	if err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("stale replica passed Check: %v", err)
	}
	// Matching content passes regardless of version skew (a front-end
	// /reload bumps the version without changing the served models).
	rs.ExpectContent(99, vcache.SliceHash(stale))
	if err := rs.Check(context.Background()); err != nil {
		t.Fatalf("content-identical replica failed Check: %v", err)
	}
}

// TestCheckVersionFallbackForOldServers: against a server that offers
// no content fingerprint, the version comparison is the only staleness
// signal.
func TestCheckVersionFallbackForOldServers(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(map[string]any{"entries": 4, "version": 2})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	rs := NewRemoteShard(srv.URL, 4, scan.Config{Sim: similarity.DefaultOptions()}, RemoteConfig{})
	rs.ExpectContent(2, "deadbeef")
	if err := rs.Check(context.Background()); err != nil {
		t.Fatalf("matching version rejected: %v", err)
	}
	rs.ExpectContent(3, "deadbeef")
	if err := rs.Check(context.Background()); err == nil {
		t.Fatal("version mismatch accepted without a server fingerprint")
	}
}

// TestCoordinatorScanCancellationDoesNotLeak is the goroutine-leak
// regression test for the scatter–gather path: contexts cancelled
// mid-scan must not strand per-shard scan goroutines or cutoff
// forwarders.
func TestCoordinatorScanCancellationDoesNotLeak(t *testing.T) {
	defer faultinject.Reset()
	rng := rand.New(rand.NewSource(53))
	models := corpus(rng, 12)
	co, err := NewLocalCoordinator(models, Router{Shards: 3},
		scan.Config{Sim: similarity.DefaultOptions()}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	target := corpus(rng, 1)[0]
	before := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // dead before the scatter even starts
		if _, err := co.ScanCtx(ctx, target); !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d: err = %v, want context.Canceled", i, err)
		}
		ctx2, cancel2 := context.WithTimeout(context.Background(), time.Millisecond)
		_, _ = co.ScanCtx(ctx2, target) // may or may not finish in time
		cancel2()
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("scatter–gather leaked goroutines: %d before, %d after", before, runtime.NumGoroutine())
}

// TestCoordinatorCloseStopsProber: building a replicated coordinator
// with a probe interval starts background goroutines; Close must stop
// them (the engine-rebuild lifecycle depends on it).
func TestCoordinatorCloseStopsProber(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	models := corpus(rng, 6)
	r := Router{Shards: 2}
	// Servers first, then the goroutine baseline: their accept loops
	// live for the whole test and must not count against the prober.
	addrs := make([]string, 2)
	for i := range addrs {
		a := httptest.NewServer(NewServer(ShardModels(models, r, i), ServerConfig{}).Handler())
		b := httptest.NewServer(NewServer(ShardModels(models, r, i), ServerConfig{}).Handler())
		t.Cleanup(a.Close)
		t.Cleanup(b.Close)
		addrs[i] = a.URL + "|" + b.URL
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		co, err := NewRemoteCoordinator(models, addrs, r,
			scan.Config{Sim: similarity.DefaultOptions()},
			RemoteConfig{Timeout: time.Second},
			Config{ProbeInterval: 10 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		time.Sleep(15 * time.Millisecond)
		co.Close()
		co.Close() // idempotent
	}
	var nilCo *Coordinator
	nilCo.Close() // nil-safe
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("prober goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// TestProberReAdmitsRestartedReplica proves end-to-end re-admission:
// kill a replica, let the breaker open, restart a server on the same
// address, and the prober re-closes the breaker without any scan
// traffic.
func TestProberReAdmitsRestartedReplica(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	models := corpus(rng, 6)
	r := Router{Shards: 1}
	slice := ShardModels(models, r, 0)

	// A real shard.Server (not httptest) so we can rebind the address.
	srvA := NewServer(slice, ServerConfig{})
	boundA, shutdownA, err := srvA.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	alive := httptest.NewServer(NewServer(slice, ServerConfig{}).Handler())
	t.Cleanup(alive.Close)

	tel := telemetry.NewCollector()
	co, err := NewRemoteCoordinator(models, []string{boundA + "|" + alive.URL}, r,
		scan.Config{Sim: similarity.DefaultOptions()},
		RemoteConfig{Timeout: time.Second},
		Config{
			Telemetry:     tel,
			Breaker:       breaker.Settings{Threshold: 1, OpenInterval: 50 * time.Millisecond},
			ProbeInterval: 20 * time.Millisecond,
		})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(co.Close)

	// Kill the first replica and trip its breaker with one scan.
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := shutdownA(sctx); err != nil {
		t.Fatal(err)
	}
	target := corpus(rng, 1)[0]
	if _, err := co.ScanCtx(context.Background(), target); err != nil {
		t.Fatalf("scan with dead first replica: %v", err)
	}
	if st := co.BreakerStates()[boundA]; st == breaker.Closed {
		t.Fatalf("dead replica breaker = %v, want not closed", st)
	}

	// Revive on the same address; the prober must re-close the breaker
	// with no scans happening at all.
	revived := NewServer(slice, ServerConfig{})
	if _, shutdownB, err := revived.Serve(boundA); err != nil {
		t.Fatalf("rebind %s: %v", boundA, err)
	} else {
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = shutdownB(ctx)
		})
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if co.BreakerStates()[boundA] == breaker.Closed {
			if tel.Counter(telemetry.BreakerCloses) == 0 {
				t.Fatal("breaker_closes not counted")
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("prober never re-admitted the revived replica (state %v)", co.BreakerStates()[boundA])
}
