package shard

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/model"
	"repro/internal/retry"
	"repro/internal/scan"
	"repro/internal/telemetry"
)

// Scan ids name one RPC attempt for /cutoff broadcast routing. They
// must be process-unique: a random per-process nonce plus an atomic
// sequence. Earlier versions derived them from the client struct's %p
// address, which both leaked heap addresses onto the wire and could
// recur once the garbage collector reused the address — a recurring id
// would collide with an unrelated in-flight scan on the server.
var (
	scanSeq   atomic.Uint64
	scanNonce = func() string {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			// crypto/rand does not fail on supported platforms; a loud
			// panic at init beats colliding scan ids at runtime.
			panic(fmt.Sprintf("shard: seeding scan-id nonce: %v", err))
		}
		return hex.EncodeToString(b[:])
	}()
)

// newScanID mints a fresh process-unique scan id. Every call returns a
// distinct id — retried RPC attempts mint their own, so a retry can
// never collide with its still-running predecessor on the server.
func newScanID() string {
	return scanNonce + "-" + strconv.FormatUint(scanSeq.Add(1), 10)
}

// RemoteConfig tunes the client side of a remote shard.
type RemoteConfig struct {
	// Timeout bounds each individual RPC (default 30s; the coordinator's
	// ShardTimeout separately bounds the whole per-shard scan, retries
	// included).
	Timeout time.Duration
	// Retry re-sends failed scan RPCs; the zero policy sends once.
	// A per-attempt Timeout expiry counts as transient (the next attempt
	// gets a fresh deadline and a fresh scan id); only the caller's own
	// context going dead is permanent and never retried.
	Retry retry.Policy
	// Telemetry counts remote retries and cutoff broadcasts.
	Telemetry *telemetry.Collector
	// Version is the coordinator-side repository version; when both it
	// and the server's advertised version are non-zero (and the server
	// offers no content fingerprint), Check treats a mismatch as
	// unhealthy. NewRemoteCoordinator threads it into every replica's
	// ExpectContent alongside the partition's content fingerprint.
	Version uint64
	// Client optionally overrides the HTTP client (tests inject
	// httptest transports); Timeout is applied per-request via context
	// either way.
	Client *http.Client
}

// RemoteShard speaks HTTP/JSON to a Server hosting one repository
// slice on another machine. Construction does not dial: a shard that is
// down at build time costs nothing until a scan needs it, and then it
// degrades that scan (partial results + error through the coordinator)
// rather than failing the build or hanging.
type RemoteShard struct {
	addr     string      // as given, the shard's Name
	base     string      // normalized URL prefix
	expected int         // partition-derived entry count
	scfg     scan.Config // scan semantics every request carries (Sim defaulted)
	cfg      RemoteConfig
	client   *http.Client

	// Content expectation for Check, set via ExpectContent. Zero values
	// skip the respective comparison (old servers, unknown content).
	expectVersion uint64
	expectSlice   string
}

// NewRemoteShard builds a client for the shard at addr ("host:port" or
// a full http:// URL) which both sides' Routers agree holds expected
// entries. scfg carries the scan semantics this client's detector wants
// (Prune, Cascade, the Index trio, Sim); they travel with every
// request. Workers and Cache are server-side concerns and ignored.
func NewRemoteShard(addr string, expected int, scfg scan.Config, cfg RemoteConfig) *RemoteShard {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	scfg.Sim = scfg.Sim.WithDefaults()
	return &RemoteShard{addr: addr, base: base, expected: expected, scfg: scfg, cfg: cfg, client: client}
}

// Name implements Shard (the address identifies the shard in errors and
// fault injection).
func (s *RemoteShard) Name() string { return s.addr }

// Len implements Shard with the partition-derived entry count; Check
// verifies the server agrees.
func (s *RemoteShard) Len() int { return s.expected }

// ExpectContent records what this client believes the server serves:
// the coordinator-side repository version and the slice's content
// fingerprint (vcache.SliceHash over the shard's models). Check then
// treats a mismatching server as unhealthy, so a replica restarted
// against a stale repository is quarantined by the health prober
// instead of silently answering with yesterday's attack models. Zero
// values skip the respective comparison. Call before the shard is used;
// not safe concurrently with Check.
func (s *RemoteShard) ExpectContent(version uint64, sliceHash string) {
	s.expectVersion = version
	s.expectSlice = sliceHash
}

// CloseIdleConnections drops this shard's pooled keep-alive
// connections. The coordinator calls it on Close so a torn-down engine
// releases its sockets (and their transport goroutines) instead of
// waiting out the transport's idle timeout; with the default client
// this flushes the process-wide shared pool, which is the intended
// "we are done scanning" semantics.
func (s *RemoteShard) CloseIdleConnections() { s.client.CloseIdleConnections() }

// Check asks the server's /healthz whether it is alive and holds the
// slice this client expects — the partition handshake for smoke tests,
// CLI startup, and the health prober's re-admission probe. Beyond
// liveness it verifies the entry count and, when ExpectContent was
// called, the slice content fingerprint: a reachable-but-stale replica
// is reported unhealthy, not failed over *to*.
func (s *RemoteShard) Check(ctx context.Context) error {
	var h healthResponse
	if err := s.roundTrip(ctx, "/healthz", nil, &h); err != nil {
		return err
	}
	if h.Entries != s.expected {
		return fmt.Errorf("shard: %s holds %d entries, router expects %d — repository or partition mismatch", s.addr, h.Entries, s.expected)
	}
	if s.expectSlice != "" && h.Slice != "" {
		// The content fingerprint is the authoritative comparison: it
		// proves the replica serves byte-equivalent models regardless of
		// how many reloads either side has seen.
		if h.Slice != s.expectSlice {
			return fmt.Errorf("shard: %s serves slice fingerprint %.12s…, coordinator expects %.12s… — stale replica (reload it)", s.addr, h.Slice, s.expectSlice)
		}
		return nil
	}
	if s.expectVersion != 0 && h.Version != 0 && h.Version != s.expectVersion {
		// Version-only fallback for servers predating the slice
		// fingerprint. Weaker: a front-end /reload bumps the version
		// without changing content, so only use it when no fingerprint is
		// available from the server.
		return fmt.Errorf("shard: %s serves repository version %d, coordinator expects %d — stale replica (reload it)", s.addr, h.Version, s.expectVersion)
	}
	return nil
}

// Scan implements Shard: one POST /scan carrying the target and the
// current cutoff, retried per the policy, while a forwarder goroutine
// broadcasts every improvement of the shared cutoff to the server for
// the duration of the scan. The reply's final best is folded back into
// the shared cutoff for the shards still running.
//
// Each attempt is self-contained: it mints a fresh scan id, re-seeds
// the cutoff from the shared cell (tighter on a retry, since other
// shards kept scanning) and runs its own broadcast forwarder. A retry
// therefore never re-sends the id of a timed-out first attempt that may
// still be scanning on the server.
func (s *RemoteShard) Scan(ctx context.Context, bbs *model.CSTBBS, cut *scan.Cutoff) ([]scan.Match, error) {
	base := scanRequest{
		Target:        toWireBBS(bbs),
		Prune:         s.scfg.Prune,
		Cascade:       s.scfg.Cascade,
		Window:        s.scfg.Sim.Window,
		ISWeight:      s.scfg.Sim.ISWeight,
		CSPWeight:     s.scfg.Sim.CSPWeight,
		Index:         s.scfg.Index,
		IndexClusters: s.scfg.IndexClusters,
		IndexMax:      s.scfg.IndexMaxClusters,
	}

	// A failed attempt is transient — and worth a fresh attempt — unless
	// the caller's own context died. retry.Transient alone is not enough
	// here: a per-RPC timeout (roundTrip's derived deadline) surfaces as
	// context.DeadlineExceeded too, but it expires one attempt, not the
	// scan; only ctx itself going dead is permanent.
	transient := func(err error) bool { return ctx.Err() == nil }
	var resp scanResponse
	err := s.cfg.Retry.Do(ctx, transient, func(n int, err error) {
		s.cfg.Telemetry.Inc(telemetry.ShardRemoteRetries)
	}, func() error {
		req := base
		if s.scfg.Prune && cut != nil {
			req.ID = newScanID()
			if best := cut.Best(); !math.IsInf(best, 1) {
				req.Cutoff = &best
			}
			stop := s.forwardCutoffs(ctx, req.ID, cut)
			defer stop()
		}
		resp = scanResponse{}
		return s.roundTrip(ctx, "/scan", &req, &resp)
	})
	if err != nil {
		return nil, err
	}
	ms, err := fromWireMatches(resp.Matches, s.expected)
	if err != nil {
		return nil, err
	}
	if s.scfg.Prune && cut != nil && resp.Best != nil {
		cut.Update(*resp.Best)
	}
	return ms, nil
}

// forwardCutoffs starts the broadcast forwarder: every time the shared
// cutoff improves, POST the new best to the server so its in-flight
// scan tightens its early abandoning. Pushes are best-effort — a lost
// broadcast costs pruning efficiency, never correctness — and the
// goroutine exits when the scan finishes or the context dies.
func (s *RemoteShard) forwardCutoffs(ctx context.Context, id string, cut *scan.Cutoff) (stop func()) {
	done := make(chan struct{})
	go func() {
		for {
			changed := cut.Changed()
			select {
			case <-done:
				return
			case <-ctx.Done():
				return
			case <-changed:
			}
			s.cfg.Telemetry.Inc(telemetry.ShardCutoffBroadcasts)
			_ = s.roundTrip(ctx, "/cutoff", &cutoffRequest{ID: id, Best: cut.Best()}, nil)
		}
	}()
	return func() { close(done) }
}

// roundTrip is one RPC: POST in (or GET when in is nil) under the
// per-RPC timeout, decode a 200 into out. The shard.remote.rpc
// failpoint fires before every request — inside the retry loop, so
// tests can prove a transient network fault is absorbed.
func (s *RemoteShard) roundTrip(ctx context.Context, path string, in, out any) error {
	if err := faultinject.Fire(faultinject.ShardRemoteRPC, path); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(ctx, s.cfg.Timeout)
	defer cancel()
	method, body := http.MethodGet, io.Reader(nil)
	if in != nil {
		enc, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("shard: encode %s: %w", path, err)
		}
		method, body = http.MethodPost, bytes.NewReader(enc)
	}
	req, err := http.NewRequestWithContext(ctx, method, s.base+path, body)
	if err != nil {
		return fmt.Errorf("shard: %s: %w", path, err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return fmt.Errorf("shard: %s %s: %w", s.addr, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("shard: %s %s: status %d: %s", s.addr, path, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("shard: %s %s: decode: %w", s.addr, path, err)
	}
	return nil
}
