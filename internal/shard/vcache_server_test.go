package shard

// Regression tests for the /scan protocol bugfix pass (duplicate scan
// ids from client retries, process-unique id minting) and for the
// server-side verdict result cache (ServerConfig.ResultCache).

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/retry"
	"repro/internal/scan"
	"repro/internal/similarity"
	"repro/internal/telemetry"
)

// postScan sends one /scan request and decodes the reply.
func postScan(t *testing.T, url string, req scanRequest) (scanResponse, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/scan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return scanResponse{}, resp.StatusCode
	}
	var out scanResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out, resp.StatusCode
}

// TestServerDuplicateScanIDIdempotent: a /scan re-sending an id that is
// already registered (a client-side timeout + retry whose first attempt
// is still scanning) must be served idempotently — reusing the
// in-flight cutoff cell — instead of being rejected. The old server
// answered 409 here, failing every such retry.
func TestServerDuplicateScanIDIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	models := corpus(rng, 9)
	target := corpus(rng, 1)[0]
	srv := NewServer(models, ServerConfig{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The "first attempt": its cutoff cell is registered and still live.
	firstCut := scan.NewCutoff()
	srv.scans.Store("retried-id", firstCut)

	sim := similarity.DefaultOptions()
	seed := 123.0
	resp, status := postScan(t, ts.URL, scanRequest{
		ID:     "retried-id",
		Target: toWireBBS(target),
		Prune:  true,
		Cutoff: &seed,
		Window: sim.Window, ISWeight: sim.ISWeight, CSPWeight: sim.CSPWeight,
	})
	if status != http.StatusOK {
		t.Fatalf("duplicate-id /scan answered %d, want 200 (old server 409'd retries)", status)
	}
	if len(resp.Matches) != len(models) {
		t.Fatalf("%d matches, want %d", len(resp.Matches), len(models))
	}
	// Proof the handler reused the registered cell rather than minting
	// its own: the scan's best landed in the first attempt's cutoff.
	if best := firstCut.Best(); math.IsInf(best, 1) {
		t.Fatal("retried scan did not reuse the in-flight cutoff cell")
	}
	// The first registrant owns the map entry; serving the retry must
	// not delete it out from under the still-running first attempt.
	if _, ok := srv.scans.Load("retried-id"); !ok {
		t.Fatal("retry deleted the first attempt's scan-id registration")
	}
}

// TestNewScanIDUnique: scan ids are process-unique — concurrent minting
// never collides and every id carries the per-process nonce, so two
// client processes cannot collide on a shared server either.
func TestNewScanIDUnique(t *testing.T) {
	const goroutines, per = 8, 500
	var mu sync.Mutex
	seen := make(map[string]bool, goroutines*per)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ids := make([]string, per)
			for i := range ids {
				ids[i] = newScanID()
			}
			mu.Lock()
			defer mu.Unlock()
			for _, id := range ids {
				if seen[id] {
					t.Errorf("duplicate scan id %q", id)
				}
				seen[id] = true
			}
		}()
	}
	wg.Wait()
	for id := range seen {
		if !strings.HasPrefix(id, scanNonce+"-") {
			t.Fatalf("id %q lacks the process nonce prefix", id)
		}
		break
	}
	if len(seen) != goroutines*per {
		t.Fatalf("%d distinct ids, want %d", len(seen), goroutines*per)
	}
}

// TestClientRetryAfterTimeoutSucceeds: the end-to-end bugfix scenario —
// the first /scan attempt stalls past the client's per-RPC timeout, the
// retry runs while the first attempt may still be registered
// server-side, and the scan still succeeds because every attempt mints
// a fresh id (and the server tolerates duplicates anyway). The recorded
// wire traffic proves the two attempts used distinct ids.
func TestClientRetryAfterTimeoutSucceeds(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	rng := rand.New(rand.NewSource(89))
	models := corpus(rng, 7)
	target := corpus(rng, 1)[0]
	ref := scan.New(models, scan.Config{Sim: similarity.DefaultOptions()})
	tel := telemetry.NewCollector()

	// Record every /scan id that reaches the server.
	var mu sync.Mutex
	var ids []string
	inner := NewServer(models, ServerConfig{}).Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/scan" {
			body, _ := io.ReadAll(r.Body)
			var req scanRequest
			_ = json.Unmarshal(body, &req)
			mu.Lock()
			ids = append(ids, req.ID)
			mu.Unlock()
			r.Body = io.NopCloser(bytes.NewReader(body))
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	// First attempt's scan stalls well past the client timeout; the
	// retry's scan runs clean.
	faultinject.Enable(faultinject.ScanWorker, faultinject.OnCall(1, faultinject.Sleep(2*time.Second)))

	s := NewRemoteShard(ts.URL, len(models), scan.Config{Prune: true, Sim: similarity.DefaultOptions()},
		RemoteConfig{Timeout: 150 * time.Millisecond, Retry: retry.Policy{Attempts: 2}, Telemetry: tel})
	cut := scan.NewCutoff()
	ms, err := s.Scan(context.Background(), target, cut)
	if err != nil {
		t.Fatalf("scan failed despite retry policy: %v (per-RPC timeouts must be transient)", err)
	}
	_, wantBest := bestOf(ref.Scan(target))
	_, gotBest := bestOf(ms)
	if gotBest != wantBest {
		t.Fatalf("retried scan best %v, want %v", gotBest, wantBest)
	}
	if n := tel.Counter(telemetry.ShardRemoteRetries); n == 0 {
		t.Fatal("no retry recorded — the timeout fault did not fire")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(ids) < 2 {
		t.Fatalf("server saw %d /scan attempts, want >= 2", len(ids))
	}
	seen := make(map[string]bool)
	for _, id := range ids {
		if id == "" {
			t.Fatal("pruned /scan attempt carried no id")
		}
		if seen[id] {
			t.Fatalf("retry re-sent scan id %q — collides with the still-registered first attempt", id)
		}
		seen[id] = true
	}
}

// TestServerResultCacheServesRepeats: with ResultCache on, a repeated
// /scan is answered from memory — bit-identical reply, no second scan —
// and requests with different scan semantics get their own entries.
func TestServerResultCacheServesRepeats(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	models := corpus(rng, 11)
	target := corpus(rng, 1)[0]
	tel := telemetry.NewCollector()
	srv := NewServer(models, ServerConfig{ResultCache: 8, Telemetry: tel})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// An uncached reference server answers the same request; the cached
	// server must agree bit-for-bit, cold and warm.
	ref := httptest.NewServer(NewServer(models, ServerConfig{}).Handler())
	defer ref.Close()

	sim := similarity.DefaultOptions()
	exact := scanRequest{Target: toWireBBS(target), Window: sim.Window, ISWeight: sim.ISWeight, CSPWeight: sim.CSPWeight}
	want, _ := postScan(t, ref.URL, exact)

	cold, _ := postScan(t, ts.URL, exact)
	warm, _ := postScan(t, ts.URL, exact)
	if !reflect.DeepEqual(cold, want) || !reflect.DeepEqual(warm, want) {
		t.Fatalf("cached replies diverged from the uncached server:\ncold %+v\nwarm %+v\nwant %+v", cold, warm, want)
	}
	if hits, misses := tel.Counter(telemetry.VCacheHits), tel.Counter(telemetry.VCacheMisses); hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d after a repeat, want 1/1", hits, misses)
	}
	if scans := tel.Counter(telemetry.ScanTargets); scans != 1 {
		t.Fatalf("scan_targets = %d, want 1 (the repeat must not scan)", scans)
	}
	if srv.ResultCacheLen() != 1 {
		t.Fatalf("ResultCacheLen = %d, want 1", srv.ResultCacheLen())
	}

	// Same target, different semantics: a separate cache entry.
	pruned := exact
	pruned.Prune = true
	pruned.ID = newScanID()
	if _, status := postScan(t, ts.URL, pruned); status != http.StatusOK {
		t.Fatalf("pruned /scan answered %d", status)
	}
	if srv.ResultCacheLen() != 2 {
		t.Fatalf("ResultCacheLen = %d after a pruned scan, want 2", srv.ResultCacheLen())
	}

	// A cached pruned reply still carries its Best so clients can fold
	// it into their cross-shard cutoff.
	again, _ := postScan(t, ts.URL, pruned)
	if again.Best == nil {
		t.Fatal("cached pruned reply lost its Best")
	}
}

// TestRemoteCoordinatorWithCachedServersBitIdentical: the full remote
// scatter–gather over result-caching shard servers stays bit-identical
// to the single-engine reference, including on the all-hits repeat
// pass.
func TestRemoteCoordinatorWithCachedServersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	models := corpus(rng, 17)
	ref := scan.New(models, scan.Config{Sim: similarity.DefaultOptions()})
	targets := corpus(rng, 3)
	tel := telemetry.NewCollector()
	r := Router{Shards: 3}
	addrs := startServers(t, models, r, ServerConfig{ResultCache: 16, Telemetry: tel})
	co, err := NewRemoteCoordinator(models, addrs, r,
		scan.Config{Sim: similarity.DefaultOptions()}, RemoteConfig{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		for ti, target := range targets {
			got, err := co.ScanCtx(context.Background(), target)
			if err != nil {
				t.Fatalf("pass %d target %d: %v", pass, ti, err)
			}
			scanEqual(t, "cached remote scan", got, ref.Scan(target))
		}
	}
	wantEach := uint64(len(targets) * r.Shards)
	if hits := tel.Counter(telemetry.VCacheHits); hits != wantEach {
		t.Errorf("hits = %d over the repeat pass, want %d (3 targets x 3 shards)", hits, wantEach)
	}
	if misses := tel.Counter(telemetry.VCacheMisses); misses != wantEach {
		t.Errorf("misses = %d over the cold pass, want %d", misses, wantEach)
	}
}
