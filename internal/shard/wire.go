package shard

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/model"
	"repro/internal/scan"
)

// The HTTP/JSON wire format between RemoteShard and Server. Scores and
// cache-state occupancies are finite float64s, and Go's encoding/json
// emits the shortest decimal that round-trips exactly, so a remote scan
// can stay bit-identical to a local one: the differential tests compare
// with ==, not a tolerance. Infinity is not representable in JSON, so
// the cutoff travels as a *float64 with nil meaning "+Inf / no cutoff
// yet".

// wireCST mirrors one model.CST (same field set as the repository
// persistence format in internal/detect).
type wireCST struct {
	Leader     uint64   `json:"leader"`
	BeforeAO   float64  `json:"before_ao"`
	BeforeIO   float64  `json:"before_io"`
	AfterAO    float64  `json:"after_ao"`
	AfterIO    float64  `json:"after_io"`
	NormInsns  []string `json:"norm_insns"`
	FirstCycle uint64   `json:"first_cycle"`
	HPCValue   uint64   `json:"hpc_value"`
}

// wireBBS mirrors one model.CSTBBS.
type wireBBS struct {
	Name       string    `json:"name"`
	TimerReads uint64    `json:"timer_reads"`
	Seq        []wireCST `json:"seq"`
}

// scanRequest is POST /scan: one target to score against the shard's
// whole slice. Prune and the similarity knobs travel with the request
// so the client's detector configuration decides the semantics; the
// server memoizes one engine per distinct configuration.
type scanRequest struct {
	// ID names this scan for later POST /cutoff broadcasts ("" opts
	// out of broadcasting).
	ID     string  `json:"id"`
	Target wireBBS `json:"target"`
	// Cutoff seeds the shard's pruning cutoff with the global best
	// distance known at send time (nil = none yet).
	Cutoff    *float64 `json:"cutoff,omitempty"`
	Prune     bool     `json:"prune"`
	Cascade   bool     `json:"cascade,omitempty"`
	Window    int      `json:"window"`
	ISWeight  float64  `json:"is_weight"`
	CSPWeight float64  `json:"csp_weight"`
	// The repository-index mode (scan.Config.Index and friends)
	// travels with the request like every other scan semantic: the
	// server builds and memoizes an indexed engine over its slice per
	// distinct configuration. Old servers ignore the fields (flat
	// scan, still exact); omitempty keeps old clients' requests
	// byte-identical.
	Index         bool `json:"index,omitempty"`
	IndexClusters int  `json:"index_clusters,omitempty"`
	IndexMax      int  `json:"index_max,omitempty"`
}

// wireMatch mirrors scan.Match with a shard-local index.
type wireMatch struct {
	Index  int     `json:"index"`
	Score  float64 `json:"score"`
	Pruned bool    `json:"pruned,omitempty"`
}

// scanResponse is the /scan reply: one match per shard entry in local
// order, plus the shard's final best exact distance (nil when the shard
// is empty) so the client can fold it into the shared cutoff for the
// benefit of shards still scanning.
type scanResponse struct {
	Matches []wireMatch `json:"matches"`
	Best    *float64    `json:"best,omitempty"`
}

// cutoffRequest is POST /cutoff: a mid-scan broadcast that the global
// best distance improved to Best.
type cutoffRequest struct {
	ID   string  `json:"id"`
	Best float64 `json:"best"`
}

// healthResponse is GET /healthz: the shard's view of its slice, so
// clients can cross-check the partition agreement before trusting it.
// Beyond the entry count it carries the serving repository's version
// and the slice's content fingerprint (vcache.SliceHash), so a
// coordinator can tell a live-but-stale replica from a healthy one
// (RemoteShard.ExpectContent). Zero/empty values mean "unknown" and
// skip the comparison, keeping old servers healthy under new clients.
type healthResponse struct {
	Entries int    `json:"entries"`
	Version uint64 `json:"version,omitempty"`
	Slice   string `json:"slice,omitempty"`
}

func toWireBBS(bbs *model.CSTBBS) wireBBS {
	w := wireBBS{Name: bbs.Name, TimerReads: bbs.TimerReads, Seq: make([]wireCST, len(bbs.Seq))}
	for i, c := range bbs.Seq {
		w.Seq[i] = wireCST{
			Leader:     c.Leader,
			BeforeAO:   c.Before.AO,
			BeforeIO:   c.Before.IO,
			AfterAO:    c.After.AO,
			AfterIO:    c.After.IO,
			NormInsns:  c.NormInsns,
			FirstCycle: c.FirstCycle,
			HPCValue:   c.HPCValue,
		}
	}
	return w
}

func fromWireBBS(w wireBBS) *model.CSTBBS {
	bbs := &model.CSTBBS{Name: w.Name, TimerReads: w.TimerReads, Seq: make([]model.CST, len(w.Seq))}
	for i, c := range w.Seq {
		bbs.Seq[i] = model.CST{
			Leader:     c.Leader,
			Before:     cache.State{AO: c.BeforeAO, IO: c.BeforeIO},
			After:      cache.State{AO: c.AfterAO, IO: c.AfterIO},
			NormInsns:  c.NormInsns,
			FirstCycle: c.FirstCycle,
			HPCValue:   c.HPCValue,
		}
	}
	return bbs
}

// fromWireMatches validates and converts a /scan reply: exactly want
// matches, locally indexed 0..want-1 in order.
func fromWireMatches(ws []wireMatch, want int) ([]scan.Match, error) {
	if len(ws) != want {
		return nil, fmt.Errorf("shard: remote returned %d matches, want %d", len(ws), want)
	}
	out := make([]scan.Match, len(ws))
	for i, w := range ws {
		if w.Index != i {
			return nil, fmt.Errorf("shard: remote match %d carries local index %d", i, w.Index)
		}
		out[i] = scan.Match{Index: w.Index, Score: w.Score, Pruned: w.Pruned}
	}
	return out, nil
}
