package shard

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/breaker"
	"repro/internal/faultinject"
	"repro/internal/model"
	"repro/internal/scan"
	"repro/internal/telemetry"
)

// A ReplicaGroup serves one partition of the repository from R
// interchangeable backends. Every replica holds the same slice, so any
// one of them can answer a scan bit-identically; the group's job is to
// make partition coverage survive backend death. Without replication a
// dead shard-serve silently drops its partition's attack models out of
// every verdict — an availability failure becomes a false-negative
// security failure. With a group, a scan fails over to the next
// replica on error or timeout and stays *complete* as long as at least
// one replica lives; *PartialError degradation is reserved for a whole
// group going dark.
//
// Each replica carries its own circuit breaker (internal/breaker):
// after a few consecutive failures the scan path stops attempting the
// corpse and skips straight to the next replica — no more per-scan
// timeout tax — while the breaker's half-open probes (and the optional
// background prober, see Config.ProbeInterval) re-admit the backend
// once it recovers.
//
// Replicas are attempted in index order, so replica 0 is the preferred
// backend of a healthy group and the failover order is deterministic.
type ReplicaGroup struct {
	name     string
	replicas []Shard
	brks     []*breaker.Breaker
	cfg      GroupConfig
}

// GroupConfig tunes a replica group.
type GroupConfig struct {
	// AttemptTimeout, when positive, bounds each replica attempt: a
	// replica slower than this fails its attempt and the scan fails
	// over to the next one. Without it a slow first replica can eat the
	// whole per-shard budget (Config.ShardTimeout) and leave no time
	// for failover.
	AttemptTimeout time.Duration
	// Breaker tunes the per-replica circuit breakers (zero value =
	// breaker defaults; Threshold -1 disables breaking entirely, every
	// scan then attempts every replica in order).
	Breaker breaker.Settings
	// Telemetry counts failovers and breaker transitions.
	Telemetry *telemetry.Collector
}

// NewReplicaGroup builds a group over replicas, which must all hold
// the same number of entries (they are presumed to serve the same
// slice; the differential and chaos suites enforce the presumption).
// The group's Name is the replicas' names joined with "|" — for a
// single-replica group it is the replica's own name, so an unreplicated
// fleet reads identically in errors and telemetry.
func NewReplicaGroup(replicas []Shard, cfg GroupConfig) (*ReplicaGroup, error) {
	if len(replicas) == 0 {
		return nil, errors.New("shard: replica group needs at least one replica")
	}
	names := make([]string, len(replicas))
	for i, r := range replicas {
		names[i] = r.Name()
		if r.Len() != replicas[0].Len() {
			return nil, fmt.Errorf("shard: replica %s holds %d entries, replica %s holds %d — replicas of a group must serve the same slice",
				r.Name(), r.Len(), replicas[0].Name(), replicas[0].Len())
		}
	}
	g := &ReplicaGroup{name: strings.Join(names, "|"), replicas: replicas, cfg: cfg}
	g.brks = make([]*breaker.Breaker, len(replicas))
	for i, r := range replicas {
		g.brks[i] = breaker.New(r.Name(), cfg.Breaker, cfg.Telemetry)
	}
	return g, nil
}

// Name implements Shard.
func (g *ReplicaGroup) Name() string { return g.name }

// Len implements Shard (every replica serves the same slice).
func (g *ReplicaGroup) Len() int { return g.replicas[0].Len() }

// Replicas returns the group's backends in preference order.
func (g *ReplicaGroup) Replicas() []Shard { return g.replicas }

// Breakers returns the per-replica circuit breakers, index-aligned
// with Replicas — the prober and the telemetry gauges hang off these.
func (g *ReplicaGroup) Breakers() []*breaker.Breaker { return g.brks }

// CloseIdleConnections forwards to every remote replica, releasing the
// group's pooled connections on coordinator Close.
func (g *ReplicaGroup) CloseIdleConnections() {
	for _, r := range g.replicas {
		if rs, ok := r.(*RemoteShard); ok {
			rs.CloseIdleConnections()
		}
	}
}

// Scan implements Shard: attempt replicas in order until one returns a
// complete slice result. A replica is passed over — one shard_failovers
// increment each — when its breaker is open (no attempt, no timeout
// paid) or when its attempt fails or exceeds AttemptTimeout. Only the
// caller's own context dying aborts the failover chain; and only when
// every replica has been passed over does the group fail, which the
// coordinator then surfaces as a *ShardError inside a *PartialError.
func (g *ReplicaGroup) Scan(ctx context.Context, bbs *model.CSTBBS, cut *scan.Cutoff) ([]scan.Match, error) {
	tel := g.cfg.Telemetry
	var errs []error
	for i, r := range g.replicas {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !g.brks[i].Allow() {
			// Known-dead (or mid-probe) backend: skip straight to the
			// next replica instead of re-paying its timeout.
			errs = append(errs, &ReplicaError{Replica: r.Name(), Err: g.brks[i].Deny()})
			tel.Inc(telemetry.ShardFailovers)
			continue
		}
		ms, err := g.attempt(ctx, r, bbs, cut)
		if err == nil {
			g.brks[i].Report(nil)
			return ms, nil
		}
		if ctx.Err() != nil {
			// The caller died mid-attempt; the failure says nothing
			// about the backend, so hand back any half-open probe slot
			// untouched and stop failing over.
			g.brks[i].ReleaseProbe()
			return nil, err
		}
		g.brks[i].Report(err)
		errs = append(errs, &ReplicaError{Replica: r.Name(), Err: err})
		tel.Inc(telemetry.ShardFailovers)
	}
	return nil, &GroupError{Group: g.name, Errs: errs}
}

// attempt runs one replica's scan under the per-attempt timeout and
// the shard.replica.rpc failpoint.
func (g *ReplicaGroup) attempt(ctx context.Context, r Shard, bbs *model.CSTBBS, cut *scan.Cutoff) ([]scan.Match, error) {
	if err := faultinject.Fire(faultinject.ShardReplicaRPC, r.Name()); err != nil {
		return nil, err
	}
	if g.cfg.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, g.cfg.AttemptTimeout)
		defer cancel()
	}
	ms, err := r.Scan(ctx, bbs, cut)
	if err != nil {
		return nil, err
	}
	if len(ms) != r.Len() {
		return nil, fmt.Errorf("replica %s returned %d matches for %d entries", r.Name(), len(ms), r.Len())
	}
	return ms, nil
}

// ReplicaError is one replica's failure (or breaker refusal) within a
// group scan.
type ReplicaError struct {
	// Replica is the failing replica's Name.
	Replica string
	// Err is the underlying failure; errors.Is(err, breaker.ErrOpen)
	// distinguishes a breaker skip from an attempted failure.
	Err error
}

func (e *ReplicaError) Error() string {
	return fmt.Sprintf("replica %s: %v", e.Replica, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *ReplicaError) Unwrap() error { return e.Err }

// GroupError reports a whole replica group down: every replica was
// passed over, so the group's partition is missing from the scan.
type GroupError struct {
	// Group is the group's Name ("addr1|addr2").
	Group string
	// Errs lists each replica's failure in attempt order.
	Errs []error
}

func (e *GroupError) Error() string {
	return fmt.Sprintf("shard: replica group %s: all %d replicas failed: %v",
		e.Group, len(e.Errs), errors.Join(e.Errs...))
}

// Unwrap exposes every replica failure to errors.Is/As.
func (e *GroupError) Unwrap() []error { return e.Errs }
