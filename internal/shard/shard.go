// Package shard partitions the attack-model repository across several
// scan engines and scans them as one: the scatter–gather layer that
// takes SCAGuard past a single machine's memory and core count. The
// paper's time-cost analysis (Section III-B3) already shows similarity
// comparison dominating end-to-end detection; once the repository
// grows past one host — many attack families, many PoC variants per
// family — a single scan.Engine caps both capacity and latency.
//
// The pieces:
//
//   - Router assigns repository entries to shards. The hash policy is
//     rendezvous (highest-random-weight) hashing over the entry name,
//     so growing from N to N+1 shards moves only ~1/(N+1) of the
//     entries; round-robin is the dumb-and-even alternative.
//   - Shard is the backend interface: LocalShard wraps an in-process
//     engine with its own DistCache; RemoteShard (remote.go) speaks
//     HTTP/JSON to a Server (server.go) hosting a shard on another
//     machine, with per-RPC timeout and retry.
//   - Coordinator (coordinator.go) broadcasts one target to every
//     shard concurrently, merges the per-shard matches back into
//     globally-indexed order, and — the performance headline — shares
//     one scan.Cutoff across every shard, so the running global best
//     score reaches every pruned scan as it improves: early abandoning
//     works across shard boundaries ("cutoff broadcast"). Local shards
//     read the shared cell directly; remote shards receive pushes.
//
// Exact mode (Prune off everywhere) is bit-identical to a single
// engine's scan — same comparisons, same float operations — which the
// differential tests in this package enforce for local and loopback
// HTTP shards alike. A dead or slow shard degrades the scan to partial
// results plus a *PartialError instead of hanging it; see
// docs/SHARDING.md for the full design.
package shard

import (
	"context"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"repro/internal/model"
	"repro/internal/scan"
)

// Policy selects how the Router distributes repository entries.
type Policy int

const (
	// PolicyHash is rendezvous hashing over the entry name:
	// deterministic, independent of insertion order for a fixed name
	// set, and rebalance-friendly (resizing from N to N+1 shards moves
	// ~1/(N+1) of the entries).
	PolicyHash Policy = iota
	// PolicyRoundRobin assigns entry i to shard i mod N: perfectly
	// even, but resizing reshuffles almost everything.
	PolicyRoundRobin
)

// String returns the policy's CLI name.
func (p Policy) String() string {
	switch p {
	case PolicyHash:
		return "hash"
	case PolicyRoundRobin:
		return "rr"
	}
	return "policy(" + strconv.Itoa(int(p)) + ")"
}

// ParsePolicy parses a CLI policy name.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "hash", "":
		return PolicyHash, nil
	case "rr", "round-robin":
		return PolicyRoundRobin, nil
	}
	return 0, fmt.Errorf("shard: unknown partition policy %q (want hash or rr)", s)
}

// Router deterministically assigns repository entries to shards. Both
// sides of a remote deployment — the coordinator and each
// `scaguard shard-serve` — run the same Router over the same entry
// list, so they agree on every shard's slice without talking.
type Router struct {
	// Shards is the shard count; values below 1 are treated as 1.
	Shards int
	// Policy selects the assignment function (default PolicyHash).
	Policy Policy
}

// Assign returns the shard index for one entry, identified by its name
// and its position in the repository.
func (r Router) Assign(name string, index int) int {
	n := r.Shards
	if n <= 1 {
		return 0
	}
	if r.Policy == PolicyRoundRobin {
		return index % n
	}
	// Rendezvous: the shard whose keyed hash of the entry wins. Ties
	// break toward the lower shard index (deterministic).
	best, bestScore := 0, uint64(0)
	for s := 0; s < n; s++ {
		h := fnv.New64a()
		h.Write([]byte(name))
		h.Write([]byte{'/'})
		h.Write([]byte(strconv.Itoa(s)))
		if score := h.Sum64(); s == 0 || score > bestScore {
			best, bestScore = s, score
		}
	}
	return best
}

// Partition maps a full entry list to per-shard global index lists.
// Each inner slice is ascending, so a shard's local order is the global
// order restricted to its entries.
func (r Router) Partition(names []string) [][]int {
	n := r.Shards
	if n < 1 {
		n = 1
	}
	parts := make([][]int, n)
	for i, name := range names {
		s := r.Assign(name, i)
		parts[s] = append(parts[s], i)
	}
	return parts
}

// Shard scores targets against one partition of the repository.
// Implementations must be safe for concurrent use by the coordinator.
type Shard interface {
	// Name identifies the shard in errors, telemetry and fault
	// injection (an index for local shards, an address for remote).
	Name() string
	// Len returns the number of repository entries the shard holds.
	Len() int
	// Scan scores the target against every entry of the shard under
	// the shared pruning cutoff (ignored by exact-mode engines) and
	// returns matches indexed shard-locally (0..Len()-1). On error the
	// matches are discarded by the coordinator.
	Scan(ctx context.Context, bbs *model.CSTBBS, cut *scan.Cutoff) ([]scan.Match, error)
}

// LocalShard is the in-process backend: its own scan.Engine over its
// slice of the repository, with its own DistCache (per-shard caches
// keep the shards contention-free; block-pair distances are pure, so
// nothing needs to be shared).
type LocalShard struct {
	name string
	eng  *scan.Engine
}

// NewLocalShard builds an in-process shard over models. cfg.Cache is
// ignored: every local shard owns a private DistCache.
func NewLocalShard(name string, models []*model.CSTBBS, cfg scan.Config) *LocalShard {
	cfg.Cache = nil
	return &LocalShard{name: name, eng: scan.New(models, cfg)}
}

// Name implements Shard.
func (s *LocalShard) Name() string { return s.name }

// Len implements Shard.
func (s *LocalShard) Len() int { return s.eng.Len() }

// Scan implements Shard by delegating to the engine's shared-cutoff
// scan.
func (s *LocalShard) Scan(ctx context.Context, bbs *model.CSTBBS, cut *scan.Cutoff) ([]scan.Match, error) {
	return s.eng.ScanCutoffCtx(ctx, bbs, cut)
}

// ShardError is one shard's failure within a scattered scan.
type ShardError struct {
	// Shard is the failing shard's Name.
	Shard string
	// Entries is how many repository entries the failure left unscanned.
	Entries int
	// Err is the underlying failure.
	Err error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("shard %s (%d entries): %v", e.Shard, e.Entries, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *ShardError) Unwrap() error { return e.Err }

// PartialError reports a degraded scan: some shards failed, so the
// returned matches cover only the surviving shards' entries. Callers
// decide whether a partial verdict is acceptable; the matches returned
// alongside a *PartialError are exact for every entry they cover.
type PartialError struct {
	// Failed lists the failing shards.
	Failed []*ShardError
	// Missing is the total number of repository entries not scanned.
	Missing int
}

func (e *PartialError) Error() string {
	names := make([]string, len(e.Failed))
	for i, f := range e.Failed {
		names[i] = f.Shard
	}
	return fmt.Sprintf("shard: partial scan: %d entries missing from failed shard(s) %s: %v",
		e.Missing, strings.Join(names, ","), e.Failed[0].Err)
}

// Unwrap exposes every shard failure to errors.Is/As.
func (e *PartialError) Unwrap() []error {
	errs := make([]error, len(e.Failed))
	for i, f := range e.Failed {
		errs[i] = f
	}
	return errs
}
