package shard

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/scan"
	"repro/internal/similarity"
)

// corpusSized builds n models of exactly `blocks` CSTs each — long
// enough that DTW work dominates the scatter–gather overhead
// (goroutines, merge, sort), the regime sharding exists for.
func corpusSized(rng *rand.Rand, n, blocks int) []*model.CSTBBS {
	out := corpus(rng, n)
	for _, m := range out {
		for m.Len() < blocks {
			m.Seq = append(m.Seq, m.Seq[rng.Intn(m.Len())])
		}
		m.Seq = m.Seq[:blocks]
	}
	return out
}

// BenchmarkShardedScan compares one scan.Engine against N-local-shard
// coordinators on the same repository and targets, exact and pruned.
// The pruned variants share one cutoff across shards, so the headline
// comparison is prune/shards=1 vs prune/shards=N: cross-shard cutoff
// broadcast must keep sharded pruning at least as effective per entry.
// Numbers are recorded in docs/PERFORMANCE.md (make bench-shard).
func BenchmarkShardedScan(b *testing.B) {
	rng := rand.New(rand.NewSource(101))
	models := corpusSized(rng, 96, 24)
	targets := corpusSized(rng, 8, 24)
	for _, prune := range []bool{false, true} {
		mode := "exact"
		if prune {
			mode = "prune"
		}
		scfg := scan.Config{Prune: prune, Sim: similarity.DefaultOptions()}
		b.Run(fmt.Sprintf("%s/engine", mode), func(b *testing.B) {
			eng := scan.New(models, scfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Scan(targets[i%len(targets)])
			}
		})
		for _, n := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/shards=%d", mode, n), func(b *testing.B) {
				co, err := NewLocalCoordinator(models, Router{Shards: n}, scfg, Config{})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := co.ScanCtx(context.Background(), targets[i%len(targets)]); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
