package shard

// Tests for the repository-index mode on the wire: an indexed remote
// scan must agree bit-identically with a flat exact scan of the same
// slice, the server must memoize indexed and flat engines separately,
// and ServerConfig.WarmIndex must pre-build the indexed engine.

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"testing"

	"repro/internal/scan"
	"repro/internal/similarity"
	"repro/internal/telemetry"
)

// TestRemoteIndexedScanBitIdentical drives a RemoteShard with the Index
// trio set against a loopback server and compares every non-pruned
// score — and the best match — against a local flat exact engine.
func TestRemoteIndexedScanBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	models := corpus(rng, 40)
	targets := corpus(rng, 4)

	tel := telemetry.NewCollector()
	srv := NewServer(models, ServerConfig{Telemetry: tel})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	exact := scan.New(models, scan.Config{Sim: similarity.DefaultOptions()})
	remote := NewRemoteShard(ts.URL, len(models),
		scan.Config{Prune: true, Index: true, Sim: similarity.DefaultOptions()}, RemoteConfig{})

	for ti, target := range targets {
		want := exact.Scan(target)
		cut := scan.NewCutoff()
		got, err := remote.Scan(context.Background(), target, cut)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("target %d: %d matches, want %d", ti, len(got), len(want))
		}
		bestG, bestW := 0, 0
		for i := range got {
			if got[i].Score > got[bestG].Score {
				bestG = i
			}
			if want[i].Score > want[bestW].Score {
				bestW = i
			}
			if !got[i].Pruned && got[i].Score != want[i].Score {
				t.Errorf("target %d entry %d: indexed remote score %.17g, exact %.17g", ti, i, got[i].Score, want[i].Score)
			}
		}
		if bestG != bestW || got[bestG].Pruned || got[bestG].Score != want[bestW].Score {
			t.Errorf("target %d: indexed remote best %d (%.17g, pruned=%v), exact best %d (%.17g)",
				ti, bestG, got[bestG].Score, got[bestG].Pruned, bestW, want[bestW].Score)
		}
	}
	if n := tel.Snapshot().Counters["index_rebuilds"]; n != 1 {
		t.Errorf("server built %d indexes for one indexed configuration, want 1", n)
	}
}

// TestServerIndexedEngineSeparation: the same slice scanned flat and
// indexed must come from two distinct memoized engines (the engineKey
// includes the Index trio), and both must agree on the best match.
func TestServerIndexedEngineSeparation(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	models := corpus(rng, 24)
	target := corpus(rng, 1)[0]

	srv := NewServer(models, ServerConfig{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sim := similarity.DefaultOptions()
	flatReq := scanRequest{Target: toWireBBS(target), Prune: true,
		Window: sim.Window, ISWeight: sim.ISWeight, CSPWeight: sim.CSPWeight}
	idxReq := flatReq
	idxReq.Index = true

	flatResp, status := postScan(t, ts.URL, flatReq)
	if status != 200 {
		t.Fatalf("flat scan answered %d", status)
	}
	idxResp, status := postScan(t, ts.URL, idxReq)
	if status != 200 {
		t.Fatalf("indexed scan answered %d", status)
	}

	srv.mu.Lock()
	engines := len(srv.engines)
	srv.mu.Unlock()
	if engines != 2 {
		t.Errorf("server memoized %d engines for flat+indexed, want 2", engines)
	}
	if flatResp.Best == nil || idxResp.Best == nil || *flatResp.Best != *idxResp.Best {
		t.Errorf("flat and indexed scans disagree on best distance: %v vs %v", flatResp.Best, idxResp.Best)
	}
}

// TestServerWarmIndex: WarmIndex pre-builds the default indexed engine
// at construction, so the first indexed request finds it memoized.
func TestServerWarmIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	models := corpus(rng, 16)

	tel := telemetry.NewCollector()
	srv := NewServer(models, ServerConfig{Telemetry: tel, WarmIndex: true, IndexClusters: 3})
	if n := tel.Snapshot().Counters["index_rebuilds"]; n != 1 {
		t.Fatalf("WarmIndex built %d indexes at startup, want 1", n)
	}
	srv.mu.Lock()
	engines := len(srv.engines)
	srv.mu.Unlock()
	if engines != 1 {
		t.Fatalf("WarmIndex memoized %d engines, want 1", engines)
	}

	// A default-semantics indexed request must reuse the warmed engine:
	// no second index build.
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	sim := similarity.DefaultOptions()
	_, status := postScan(t, ts.URL, scanRequest{Target: toWireBBS(models[0]), Prune: true, Index: true, IndexClusters: 3,
		Window: sim.Window, ISWeight: sim.ISWeight, CSPWeight: sim.CSPWeight})
	if status != 200 {
		t.Fatalf("indexed scan answered %d", status)
	}
	if n := tel.Snapshot().Counters["index_rebuilds"]; n != 1 {
		t.Errorf("first indexed request rebuilt the index (%d builds total), warming missed", n)
	}
}
