package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"sync"

	"repro/internal/model"
	"repro/internal/scan"
	"repro/internal/similarity"
	"repro/internal/telemetry"
)

// ServerConfig tunes a shard server.
type ServerConfig struct {
	// Workers is each engine's worker-pool size; <= 0 selects
	// GOMAXPROCS.
	Workers int
	// Telemetry optionally instruments the server's engines.
	Telemetry *telemetry.Collector
}

// engineKey is one distinct scan semantics a client asked for. Engines
// are memoized per key and share the server's one DistCache: the
// Levenshtein memo is keyed on block content, which pruning and term
// weights do not change.
type engineKey struct {
	prune    bool
	window   int
	isw, csp float64
}

// Server hosts one repository slice behind the shard HTTP protocol:
// POST /scan scores a target against the whole slice, POST /cutoff
// receives mid-scan global-best broadcasts, GET /healthz reports the
// slice size for the partition handshake. It backs the
// `scaguard shard-serve` CLI mode and the loopback servers in tests.
type Server struct {
	models []*model.CSTBBS
	cfg    ServerConfig
	cache  *scan.DistCache

	mu      sync.Mutex
	engines map[engineKey]*scan.Engine

	scans sync.Map // scan id → *scan.Cutoff of the in-flight scan
}

// NewServer builds a server over this shard's slice of the repository,
// in ascending-global-index order (Router.Partition's output on the
// serving side).
func NewServer(models []*model.CSTBBS, cfg ServerConfig) *Server {
	return &Server{
		models:  append([]*model.CSTBBS(nil), models...),
		cfg:     cfg,
		cache:   scan.NewDistCache(),
		engines: make(map[engineKey]*scan.Engine),
	}
}

// Len returns the number of entries in the served slice.
func (s *Server) Len() int { return len(s.models) }

// engine returns the memoized engine for one scan semantics, building
// it on first use.
func (s *Server) engine(k engineKey) *scan.Engine {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.engines[k]; ok {
		return e
	}
	e := scan.New(s.models, scan.Config{
		Workers:   s.cfg.Workers,
		Prune:     k.prune,
		Sim:       similarity.Options{Window: k.window, ISWeight: k.isw, CSPWeight: k.csp},
		Cache:     s.cache,
		Telemetry: s.cfg.Telemetry,
	})
	s.engines[k] = e
	return e
}

// Handler returns the shard protocol's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/scan", s.handleScan)
	mux.HandleFunc("/cutoff", s.handleCutoff)
	mux.HandleFunc("/healthz", s.handleHealth)
	return mux
}

func (s *Server) handleScan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req scanRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad scan request: "+err.Error(), http.StatusBadRequest)
		return
	}
	eng := s.engine(engineKey{prune: req.Prune, window: req.Window, isw: req.ISWeight, csp: req.CSPWeight})

	cut := scan.NewCutoff()
	if req.Cutoff != nil {
		cut.Update(*req.Cutoff)
	}
	if req.ID != "" {
		// Register before scanning so /cutoff broadcasts race-free find
		// the in-flight scan; a broadcast for a finished (deleted) scan
		// is a no-op by design.
		if _, loaded := s.scans.LoadOrStore(req.ID, cut); loaded {
			http.Error(w, "duplicate scan id "+req.ID, http.StatusConflict)
			return
		}
		defer s.scans.Delete(req.ID)
	}

	ms, err := eng.ScanCutoffCtx(r.Context(), fromWireBBS(req.Target), cut)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// Client went away; the status is a courtesy for logs.
			status = http.StatusServiceUnavailable
		}
		http.Error(w, "scan failed: "+err.Error(), status)
		return
	}
	resp := scanResponse{Matches: make([]wireMatch, len(ms))}
	for i, m := range ms {
		resp.Matches[i] = wireMatch{Index: m.Index, Score: m.Score, Pruned: m.Pruned}
	}
	if best := cut.Best(); !math.IsInf(best, 1) {
		resp.Best = &best
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

func (s *Server) handleCutoff(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req cutoffRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad cutoff request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if c, ok := s.scans.Load(req.ID); ok {
		c.(*scan.Cutoff).Update(req.Best)
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("{}"))
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(healthResponse{Entries: len(s.models)})
}

// Serve binds addr (e.g. ":7070"; an explicit port 0 picks a free one)
// and serves the shard protocol until shutdown is called. It returns
// the bound address so callers — and the shard-smoke test harness —
// can hand it to NewRemoteShard.
func (s *Server) Serve(addr string) (bound string, shutdown func(context.Context) error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("shard: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s.Handler()}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	return ln.Addr().String(), func(ctx context.Context) error {
		err := srv.Shutdown(ctx)
		if serr := <-done; serr != nil && !errors.Is(serr, http.ErrServerClosed) && err == nil {
			err = serr
		}
		return err
	}, nil
}
