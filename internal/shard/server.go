package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"sync"

	"repro/internal/model"
	"repro/internal/scan"
	"repro/internal/similarity"
	"repro/internal/telemetry"
	"repro/internal/vcache"
)

// ServerConfig tunes a shard server.
type ServerConfig struct {
	// Workers is each engine's worker-pool size; <= 0 selects
	// GOMAXPROCS.
	Workers int
	// ResultCache, when > 0, memoizes whole /scan outcomes in a bounded
	// LRU of that many entries (internal/vcache), keyed by the target's
	// content hash, the served slice's fingerprint and the request's
	// scan semantics. Repeated targets — the same binary classified by
	// many clients, re-scored variant sweeps — are answered from memory,
	// and concurrent identical requests collapse onto one scan. The
	// served slice is immutable for the server's lifetime, so no
	// invalidation is needed; exact-mode cached replies are
	// bit-identical to uncached ones, and cutoff-pruned replies are
	// cached as pruned (one valid pruned outcome, reused). See
	// docs/SHARDING.md.
	ResultCache int
	// Telemetry optionally instruments the server's engines and result
	// cache.
	Telemetry *telemetry.Collector
	// Version is the serving repository's version, advertised on
	// /healthz so coordinators can spot a replica loaded from a stale
	// repository (0 = unknown, comparison skipped client-side).
	Version uint64
	// WarmIndex, when true, pre-builds the indexed scan engine for the
	// default indexed semantics (prune on, cascade off, default
	// similarity options, IndexClusters clusters) at server start, so
	// the first indexed /scan does not pay the O(n²) index
	// construction. Requests with other semantics still build their
	// own engines lazily, exactly as without warming.
	WarmIndex bool
	// IndexClusters is the cluster count the warmed indexed engine
	// uses (<= 0 selects the ~sqrt(N) default). It only shapes the
	// warmed engine; clients' requested cluster counts always win for
	// their own requests.
	IndexClusters int
}

// engineKey is one distinct scan semantics a client asked for. Engines
// are memoized per key and share the server's one DistCache: the
// Levenshtein memo is keyed on block content, which pruning and term
// weights do not change.
type engineKey struct {
	prune         bool
	cascade       bool
	index         bool
	indexClusters int
	indexMax      int
	window        int
	isw, csp      float64
}

// Server hosts one repository slice behind the shard HTTP protocol:
// POST /scan scores a target against the whole slice, POST /cutoff
// receives mid-scan global-best broadcasts, GET /healthz reports the
// slice size for the partition handshake. It backs the
// `scaguard shard-serve` CLI mode and the loopback servers in tests.
type Server struct {
	models []*model.CSTBBS
	cfg    ServerConfig
	cache  *scan.DistCache

	// results memoizes whole /scan outcomes (nil when ResultCache is
	// off). sliceHash — always computed — keys cache entries to this
	// exact served slice and is advertised on /healthz as the content
	// fingerprint behind the staleness handshake.
	results   *vcache.Cache
	sliceHash string

	mu      sync.Mutex
	engines map[engineKey]*scan.Engine

	scans sync.Map // scan id → *scan.Cutoff of the in-flight scan
}

// NewServer builds a server over this shard's slice of the repository,
// in ascending-global-index order (Router.Partition's output on the
// serving side).
func NewServer(models []*model.CSTBBS, cfg ServerConfig) *Server {
	s := &Server{
		models:  append([]*model.CSTBBS(nil), models...),
		cfg:     cfg,
		cache:   scan.NewDistCache(),
		engines: make(map[engineKey]*scan.Engine),
	}
	s.sliceHash = vcache.SliceHash(s.models)
	if cfg.ResultCache > 0 {
		s.results = vcache.New(cfg.ResultCache, cfg.Telemetry)
		cfg.Telemetry.RegisterGauges("shard_vcache", s.results.TelemetryGauges)
	}
	if cfg.WarmIndex {
		sim := similarity.DefaultOptions()
		s.engine(engineKey{prune: true, index: true, indexClusters: cfg.IndexClusters,
			window: sim.Window, isw: sim.ISWeight, csp: sim.CSPWeight})
	}
	return s
}

// ResultCacheLen returns the number of memoized /scan outcomes (0 when
// result caching is off), for diagnostics and tests.
func (s *Server) ResultCacheLen() int { return s.results.Len() }

// Len returns the number of entries in the served slice.
func (s *Server) Len() int { return len(s.models) }

// engine returns the memoized engine for one scan semantics, building
// it on first use.
func (s *Server) engine(k engineKey) *scan.Engine {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.engines[k]; ok {
		return e
	}
	e := scan.New(s.models, scan.Config{
		Workers:          s.cfg.Workers,
		Prune:            k.prune,
		Cascade:          k.cascade,
		Index:            k.index,
		IndexClusters:    k.indexClusters,
		IndexMaxClusters: k.indexMax,
		Sim:              similarity.Options{Window: k.window, ISWeight: k.isw, CSPWeight: k.csp},
		Cache:            s.cache,
		Telemetry:        s.cfg.Telemetry,
	})
	s.engines[k] = e
	return e
}

// Handler returns the shard protocol's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/scan", s.handleScan)
	mux.HandleFunc("/cutoff", s.handleCutoff)
	mux.HandleFunc("/healthz", s.handleHealth)
	return mux
}

func (s *Server) handleScan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req scanRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad scan request: "+err.Error(), http.StatusBadRequest)
		return
	}
	bbs := fromWireBBS(req.Target)

	// The result cache sits in front of the whole scan path: a repeated
	// target is answered from memory (no engine, no cutoff cell, no
	// scan-id registration — /cutoff broadcasts for its id are no-ops by
	// design), and concurrent identical requests collapse onto one scan.
	// A nil cache passes straight through to scanOnce.
	key := vcache.Key{
		Target:        vcache.TargetHash(bbs),
		Slice:         s.sliceHash,
		Prune:         req.Prune,
		Cascade:       req.Cascade,
		Index:         req.Index,
		IndexClusters: req.IndexClusters,
		IndexMax:      req.IndexMax,
		Window:        req.Window,
		ISW:           req.ISWeight,
		CSP:           req.CSPWeight,
	}
	res, _, err := s.results.Do(r.Context(), key, func() (vcache.Result, bool, error) {
		return s.scanOnce(r.Context(), req, bbs)
	})
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// Client went away; the status is a courtesy for logs.
			status = http.StatusServiceUnavailable
		}
		http.Error(w, "scan failed: "+err.Error(), status)
		return
	}
	resp := scanResponse{Matches: make([]wireMatch, len(res.Matches))}
	for i, m := range res.Matches {
		resp.Matches[i] = wireMatch{Index: m.Index, Score: m.Score, Pruned: m.Pruned}
	}
	if !math.IsInf(res.Best, 1) {
		best := res.Best
		resp.Best = &best
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// scanOnce runs one actual slice scan for a /scan request: pick the
// memoized engine for the requested semantics, seed the pruning cutoff,
// register the scan id for mid-flight /cutoff broadcasts, scan.
func (s *Server) scanOnce(ctx context.Context, req scanRequest, bbs *model.CSTBBS) (vcache.Result, bool, error) {
	eng := s.engine(engineKey{
		prune: req.Prune, cascade: req.Cascade,
		index: req.Index, indexClusters: req.IndexClusters, indexMax: req.IndexMax,
		window: req.Window, isw: req.ISWeight, csp: req.CSPWeight,
	})

	cut := scan.NewCutoff()
	if req.Cutoff != nil {
		cut.Update(*req.Cutoff)
	}
	if req.ID != "" {
		// Register before scanning so /cutoff broadcasts race-free find
		// the in-flight scan; a broadcast for a finished (deleted) scan
		// is a no-op by design.
		if cell, loaded := s.scans.LoadOrStore(req.ID, cut); loaded {
			// A client-side timeout + retry can re-send an id whose
			// first attempt is still scanning. The retried attempt is
			// idempotent: reuse the in-flight cutoff cell (broadcasts
			// for the id keep reaching both attempts) and serve this
			// request its own result. The first registrant owns the
			// map entry and deletes it when it finishes.
			cut = cell.(*scan.Cutoff)
			if req.Cutoff != nil {
				cut.Update(*req.Cutoff)
			}
		} else {
			defer s.scans.Delete(req.ID)
		}
	}

	ms, err := eng.ScanCutoffCtx(ctx, bbs, cut)
	if err != nil {
		return vcache.Result{}, false, err
	}
	return vcache.Result{Matches: ms, Best: cut.Best()}, true, nil
}

func (s *Server) handleCutoff(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req cutoffRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad cutoff request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if c, ok := s.scans.Load(req.ID); ok {
		c.(*scan.Cutoff).Update(req.Best)
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("{}"))
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(healthResponse{
		Entries: len(s.models),
		Version: s.cfg.Version,
		Slice:   s.sliceHash,
	})
}

// Serve binds addr (e.g. ":7070"; an explicit port 0 picks a free one)
// and serves the shard protocol until shutdown is called. It returns
// the bound address so callers — and the shard-smoke test harness —
// can hand it to NewRemoteShard.
//
// The shutdown function drains gracefully until ctx expires, then
// force-closes whatever remains, so it always terminates the server
// within the caller's deadline. (Graceful-only shutdown can stall for
// seconds on a connection a client dialed but never used — net/http
// leaves such conns open for a grace window of its own — which would
// otherwise turn every fleet teardown into a multi-second wait.) A
// ctx error from the graceful phase is still returned so callers can
// tell a drain from a forced close.
func (s *Server) Serve(addr string) (bound string, shutdown func(context.Context) error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("shard: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s.Handler()}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	return ln.Addr().String(), func(ctx context.Context) error {
		err := srv.Shutdown(ctx)
		if err != nil {
			if cerr := srv.Close(); cerr != nil {
				err = errors.Join(err, cerr)
			}
		}
		if serr := <-done; serr != nil && !errors.Is(serr, http.ErrServerClosed) && err == nil {
			err = serr
		}
		return err
	}, nil
}
