package shard

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/breaker"
	"repro/internal/model"
	"repro/internal/scan"
	"repro/internal/vcache"
)

// PartitionModels applies the router to the models' names, returning
// per-shard ascending global index lists (the index argument for
// NewCoordinator, and the slice selector for shard-serve).
func PartitionModels(models []*model.CSTBBS, r Router) [][]int {
	names := make([]string, len(models))
	for i, m := range models {
		names[i] = m.Name
	}
	return r.Partition(names)
}

// sliceModels materializes one shard's slice in local (ascending
// global) order.
func sliceModels(models []*model.CSTBBS, part []int) []*model.CSTBBS {
	out := make([]*model.CSTBBS, len(part))
	for local, g := range part {
		out[local] = models[g]
	}
	return out
}

// ShardModels returns the slice of models shard i of r would hold —
// what a `scaguard shard-serve --shard-index i` process serves. Both
// sides run this over the same repository, so they agree on every
// slice without coordination.
func ShardModels(models []*model.CSTBBS, r Router, i int) []*model.CSTBBS {
	return sliceModels(models, PartitionModels(models, r)[i])
}

// NewLocalCoordinator shards models across r.Shards in-process engines.
// scfg is each shard engine's configuration; its worker budget
// (default GOMAXPROCS) is divided across the shards so N shards don't
// oversubscribe the machine N-fold, and its Cache is ignored (each
// shard owns a private DistCache).
func NewLocalCoordinator(models []*model.CSTBBS, r Router, scfg scan.Config, ccfg Config) (*Coordinator, error) {
	if r.Shards < 1 {
		r.Shards = 1
	}
	parts := PartitionModels(models, r)
	workers := scfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	scfg.Workers = (workers + r.Shards - 1) / r.Shards
	shards := make([]Shard, len(parts))
	for i, part := range parts {
		shards[i] = NewLocalShard(strconv.Itoa(i), sliceModels(models, part), scfg)
	}
	return NewCoordinator(shards, parts, ccfg)
}

// SplitReplicas parses one shard-address argument into its replica
// addresses: "host1:7070|host2:7070" names two interchangeable backends
// for the same partition, attempted in the order written. A plain
// address is a single-replica group. Whitespace around separators is
// tolerated; empty elements are rejected.
func SplitReplicas(addr string) ([]string, error) {
	parts := strings.Split(addr, "|")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("shard: empty replica address in %q", addr)
		}
		out = append(out, p)
	}
	return out, nil
}

// NewRemoteCoordinator builds a coordinator whose shards live behind
// the given addresses, one replica group per shard in router order
// (r.Shards is forced to len(addrs)). Each address may name several
// "|"-separated replicas serving the same partition — scans fail over
// between them (see ReplicaGroup), with per-replica circuit breakers
// tuned by ccfg.Breaker and, when ccfg.ProbeInterval is set, a
// background health prober re-admitting recovered backends (stop it
// with Coordinator.Close). scfg supplies the scan semantics every
// remote request carries (Prune, Sim); Workers and Cache are
// server-side concerns and ignored here. rcfg.Version plus each
// partition's content fingerprint become the replicas' health
// expectation, so a stale backend probes unhealthy. No connection is
// made until the first scan: a dead address degrades scans rather than
// failing construction — call (*RemoteShard).Check to handshake
// eagerly.
func NewRemoteCoordinator(models []*model.CSTBBS, addrs []string, r Router, scfg scan.Config, rcfg RemoteConfig, ccfg Config) (*Coordinator, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("shard: remote coordinator needs at least one address")
	}
	r.Shards = len(addrs)
	parts := PartitionModels(models, r)
	gcfg := GroupConfig{AttemptTimeout: ccfg.AttemptTimeout, Breaker: ccfg.Breaker, Telemetry: ccfg.Telemetry}
	shards := make([]Shard, len(parts))
	var probes []breaker.Probe
	for i, part := range parts {
		reps, err := SplitReplicas(addrs[i])
		if err != nil {
			return nil, err
		}
		slice := vcache.SliceHash(sliceModels(models, part))
		replicas := make([]Shard, len(reps))
		for j, a := range reps {
			rs := NewRemoteShard(a, len(part), scfg, rcfg)
			rs.ExpectContent(rcfg.Version, slice)
			replicas[j] = rs
		}
		g, err := NewReplicaGroup(replicas, gcfg)
		if err != nil {
			return nil, err
		}
		shards[i] = g
		if ccfg.ProbeInterval > 0 {
			for j, rep := range g.Replicas() {
				probes = append(probes, breaker.Probe{
					Name:    rep.Name(),
					Breaker: g.Breakers()[j],
					Check:   rep.(*RemoteShard).Check,
				})
			}
		}
	}
	c, err := NewCoordinator(shards, parts, ccfg)
	if err != nil {
		return nil, err
	}
	if len(probes) > 0 {
		c.prober = breaker.NewProber(ccfg.ProbeInterval, probes)
		c.prober.Start()
	}
	return c, nil
}
