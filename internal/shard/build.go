package shard

import (
	"fmt"
	"runtime"
	"strconv"

	"repro/internal/model"
	"repro/internal/scan"
)

// PartitionModels applies the router to the models' names, returning
// per-shard ascending global index lists (the index argument for
// NewCoordinator, and the slice selector for shard-serve).
func PartitionModels(models []*model.CSTBBS, r Router) [][]int {
	names := make([]string, len(models))
	for i, m := range models {
		names[i] = m.Name
	}
	return r.Partition(names)
}

// sliceModels materializes one shard's slice in local (ascending
// global) order.
func sliceModels(models []*model.CSTBBS, part []int) []*model.CSTBBS {
	out := make([]*model.CSTBBS, len(part))
	for local, g := range part {
		out[local] = models[g]
	}
	return out
}

// ShardModels returns the slice of models shard i of r would hold —
// what a `scaguard shard-serve --shard-index i` process serves. Both
// sides run this over the same repository, so they agree on every
// slice without coordination.
func ShardModels(models []*model.CSTBBS, r Router, i int) []*model.CSTBBS {
	return sliceModels(models, PartitionModels(models, r)[i])
}

// NewLocalCoordinator shards models across r.Shards in-process engines.
// scfg is each shard engine's configuration; its worker budget
// (default GOMAXPROCS) is divided across the shards so N shards don't
// oversubscribe the machine N-fold, and its Cache is ignored (each
// shard owns a private DistCache).
func NewLocalCoordinator(models []*model.CSTBBS, r Router, scfg scan.Config, ccfg Config) (*Coordinator, error) {
	if r.Shards < 1 {
		r.Shards = 1
	}
	parts := PartitionModels(models, r)
	workers := scfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	scfg.Workers = (workers + r.Shards - 1) / r.Shards
	shards := make([]Shard, len(parts))
	for i, part := range parts {
		shards[i] = NewLocalShard(strconv.Itoa(i), sliceModels(models, part), scfg)
	}
	return NewCoordinator(shards, parts, ccfg)
}

// NewRemoteCoordinator builds a coordinator whose shards live behind
// the given addresses, one per shard in router order (r.Shards is
// forced to len(addrs)). scfg supplies the scan semantics every remote
// request carries (Prune, Sim); Workers and Cache are server-side
// concerns and ignored here. No connection is made until the first
// scan: a dead address degrades scans rather than failing construction
// — call (*RemoteShard).Check to handshake eagerly.
func NewRemoteCoordinator(models []*model.CSTBBS, addrs []string, r Router, scfg scan.Config, rcfg RemoteConfig, ccfg Config) (*Coordinator, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("shard: remote coordinator needs at least one address")
	}
	r.Shards = len(addrs)
	parts := PartitionModels(models, r)
	shards := make([]Shard, len(parts))
	for i, part := range parts {
		shards[i] = NewRemoteShard(addrs[i], len(part), scfg.Prune, scfg.Cascade, scfg.Sim, rcfg)
	}
	return NewCoordinator(shards, parts, ccfg)
}
