package telemetry

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestExpvarSinkDuplicateNameDoesNotPanic(t *testing.T) {
	a := NewExpvarSink("telemetry_dup_sink")
	b := NewExpvarSink("telemetry_dup_sink") // would panic before the registry
	if a != b {
		t.Error("duplicate name did not return the original sink")
	}
	c := NewCollector()
	c.SetSink(b)
	c.Inc(ScanTargets)
	c.Flush()
	a.mu.Lock()
	got := a.last.Counters["scan_targets"]
	a.mu.Unlock()
	if got != 1 {
		t.Errorf("shared sink did not observe flush: %d", got)
	}
}

func TestPrometheusExposition(t *testing.T) {
	c := NewCollector()
	c.Add(ScanEntriesExact, 6)
	c.Add(ScanEntriesAbandoned, 2)
	c.Inc(PanicsRecovered)
	c.Observe(StageScan, 3*time.Microsecond)
	c.Observe(StageScan, 500*time.Microsecond)
	c.RegisterGauges("repository", func() map[string]uint64 {
		return map[string]uint64{"entries": 7}
	})
	text := c.Snapshot().Prometheus()

	for _, want := range []string{
		"# TYPE scaguard_scan_entries_exact_total counter",
		"scaguard_scan_entries_exact_total 6",
		"scaguard_panics_recovered_total 1",
		"# TYPE scaguard_repository_entries gauge",
		"scaguard_repository_entries 7",
		"# TYPE scaguard_prune_rate gauge",
		"scaguard_prune_rate 0.25",
		"# TYPE scaguard_stage_duration_seconds histogram",
		`scaguard_stage_duration_seconds_bucket{stage="scan",le="+Inf"} 2`,
		`scaguard_stage_duration_seconds_count{stage="scan"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}

	// le buckets must be cumulative: the last finite bucket's count can
	// never exceed the +Inf count, and counts are non-decreasing.
	var prev uint64
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, `scaguard_stage_duration_seconds_bucket{stage="scan"`) {
			continue
		}
		n, err := strconv.ParseUint(line[strings.LastIndex(line, " ")+1:], 10, 64)
		if err != nil {
			t.Fatalf("unparseable bucket line %q: %v", line, err)
		}
		if n < prev {
			t.Fatalf("buckets not cumulative at %q", line)
		}
		prev = n
	}
	if prev != 2 {
		t.Fatalf("+Inf bucket = %d, want 2", prev)
	}
}

func TestHandlerContentNegotiation(t *testing.T) {
	c := NewCollector()
	c.Inc(ScanTargets)
	srv := httptest.NewServer(Handler(c))
	defer srv.Close()

	get := func(accept, query string) (string, string) {
		req, err := http.NewRequest("GET", srv.URL+"/"+query, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.Header.Get("Content-Type"), b.String()
	}

	if ct, body := get("", ""); ct != "application/json" || !strings.Contains(body, `"counters"`) {
		t.Errorf("default: ct=%q body=%.60q", ct, body)
	}
	if ct, body := get("text/plain;version=0.0.4", ""); ct != PrometheusContentType ||
		!strings.Contains(body, "scaguard_scan_targets_total 1") {
		t.Errorf("accept text/plain: ct=%q body=%.60q", ct, body)
	}
	if ct, _ := get("application/openmetrics-text", ""); ct != PrometheusContentType {
		t.Errorf("accept openmetrics: ct=%q", ct)
	}
	if ct, body := get("", "?format=prometheus"); ct != PrometheusContentType ||
		!strings.Contains(body, "scaguard_scan_targets_total 1") {
		t.Errorf("format=prometheus: ct=%q body=%.60q", ct, body)
	}
	if ct, _ := get("text/plain", "?format=json"); ct != "application/json" {
		t.Errorf("format=json overrides Accept: ct=%q", ct)
	}
}
