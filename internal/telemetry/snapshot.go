package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// BucketCount is one non-empty histogram bucket: Count observations
// with duration < UpperMicros microseconds (0 marks the catch-all top
// bucket).
type BucketCount struct {
	UpperMicros uint64 `json:"upper_us"`
	Count       uint64 `json:"count"`
}

// StageStats is the exported view of one stage histogram.
type StageStats struct {
	Count   uint64        `json:"count"`
	Total   time.Duration `json:"total_ns"`
	Min     time.Duration `json:"min_ns"`
	Max     time.Duration `json:"max_ns"`
	Mean    time.Duration `json:"mean_ns"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Derived holds the ratios deployments actually watch, precomputed so
// every exporter (report, JSON, expvar) agrees on the arithmetic.
// Rates are in [0,1]; a rate whose denominator is zero is 0.
type Derived struct {
	// PruneRate is the fraction of entry comparisons resolved without a
	// full DTW (lower-bound skip or row-wise abandon).
	PruneRate float64 `json:"prune_rate"`
	// LowerBoundSkipRate and AbandonRate split PruneRate by mechanism.
	LowerBoundSkipRate float64 `json:"lb_skip_rate"`
	AbandonRate        float64 `json:"abandon_rate"`
	// CacheBlockHitRate / CachePairHitRate are DistCache intern and
	// pair-memo hit rates (present only when a distcache gauge source
	// is registered).
	CacheBlockHitRate float64 `json:"cache_block_hit_rate"`
	CachePairHitRate  float64 `json:"cache_pair_hit_rate"`
	// IndexSkipRate is the fraction of cluster decisions in indexed
	// scans that skipped the cluster wholesale (skipped over
	// skipped+descended); 0 when no indexed scan ran.
	IndexSkipRate float64 `json:"index_skip_rate"`
}

// Snapshot is a point-in-time view of a collector, ready for JSON
// encoding. Individual values are read atomically; the snapshot as a
// whole is not a cross-counter transaction (concurrent scans may land
// between reads), but every counter is monotone, so successive
// snapshots are componentwise non-decreasing.
type Snapshot struct {
	Counters map[string]uint64            `json:"counters"`
	Stages   map[string]StageStats        `json:"stages"`
	Gauges   map[string]map[string]uint64 `json:"gauges,omitempty"`
	Derived  Derived                      `json:"derived"`
}

// Snapshot reads the collector. Safe on a nil collector, which yields
// an empty snapshot.
func (c *Collector) Snapshot() Snapshot {
	snap := Snapshot{
		Counters: make(map[string]uint64, int(numCounters)),
		Stages:   make(map[string]StageStats, int(numStages)),
	}
	if c == nil {
		return snap
	}
	for k := Counter(0); k < numCounters; k++ {
		snap.Counters[k.String()] = c.counters[k].Load()
	}
	for s := Stage(0); s < numStages; s++ {
		h := &c.stages[s]
		st := StageStats{
			Count: h.count.Load(),
			Total: time.Duration(h.sumNS.Load()),
			Min:   time.Duration(h.minNS.Load()),
			Max:   time.Duration(h.maxNS.Load()),
		}
		if st.Count > 0 {
			st.Mean = st.Total / time.Duration(st.Count)
		}
		for b := 0; b < histBuckets; b++ {
			n := h.buckets[b].Load()
			if n == 0 {
				continue
			}
			upper := uint64(0) // catch-all
			if b < histBuckets-1 {
				upper = uint64(1) << b
			}
			st.Buckets = append(st.Buckets, BucketCount{UpperMicros: upper, Count: n})
		}
		snap.Stages[s.String()] = st
	}
	c.mu.Lock()
	for name, fn := range c.gauges {
		if snap.Gauges == nil {
			snap.Gauges = make(map[string]map[string]uint64, len(c.gauges))
		}
		snap.Gauges[name] = fn()
	}
	c.mu.Unlock()
	snap.Derived = derive(snap)
	return snap
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// boundSkips sums every lower-bound-based skip: the per-row bound plus
// the cascade's tier-1/2 bounds (which replace it when Cascade is on).
// All three are "entry pruned before DTW", so the derived rates treat
// them as one bucket regardless of which tier fired.
func boundSkips(s Snapshot) uint64 {
	return s.Counters[ScanEntriesLowerBoundSkipped.String()] +
		s.Counters[ScanEntriesKimSkipped.String()] +
		s.Counters[ScanEntriesKeoghSkipped.String()]
}

func derive(s Snapshot) Derived {
	exact := s.Counters[ScanEntriesExact.String()]
	skipped := boundSkips(s)
	abandoned := s.Counters[ScanEntriesAbandoned.String()]
	total := exact + skipped + abandoned
	d := Derived{
		PruneRate:          ratio(skipped+abandoned, total),
		LowerBoundSkipRate: ratio(skipped, total),
		AbandonRate:        ratio(abandoned, total),
	}
	if g, ok := s.Gauges["distcache"]; ok {
		d.CacheBlockHitRate = ratio(g["block_hits"], g["block_hits"]+g["block_misses"])
		d.CachePairHitRate = ratio(g["pair_hits"], g["pair_hits"]+g["pair_misses"])
	}
	idxSkip := s.Counters[IndexClustersSkipped.String()]
	idxDesc := s.Counters[IndexClustersDescended.String()]
	d.IndexSkipRate = ratio(idxSkip, idxSkip+idxDesc)
	return d
}

// WriteReport renders the snapshot as the human-readable text behind
// `scaguard classify -stats`: counters, derived rates and per-stage
// latencies, skipping sections with no recorded activity.
func (s Snapshot) WriteReport(w io.Writer) {
	fmt.Fprintln(w, "telemetry:")
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if s.Counters[n] == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-28s %d\n", n, s.Counters[n])
	}
	exact := s.Counters[ScanEntriesExact.String()]
	skipped := boundSkips(s)
	abandoned := s.Counters[ScanEntriesAbandoned.String()]
	if total := exact + skipped + abandoned; total > 0 {
		fmt.Fprintf(w, "  pruning:  %.1f%% of %d comparisons (%.1f%% lower-bound skips, %.1f%% DTW abandons)\n",
			s.Derived.PruneRate*100, total,
			s.Derived.LowerBoundSkipRate*100, s.Derived.AbandonRate*100)
	}
	if g, ok := s.Gauges["distcache"]; ok {
		fmt.Fprintf(w, "  distcache: %d blocks %d pairs, block hit rate %.1f%%, pair hit rate %.1f%%\n",
			g["blocks"], g["pairs"],
			s.Derived.CacheBlockHitRate*100, s.Derived.CachePairHitRate*100)
	}
	if skip, desc := s.Counters[IndexClustersSkipped.String()], s.Counters[IndexClustersDescended.String()]; skip+desc > 0 {
		fmt.Fprintf(w, "  index:    %.1f%% of %d cluster decisions skipped wholesale (%d rebuilds)\n",
			s.Derived.IndexSkipRate*100, skip+desc, s.Counters[IndexRebuilds.String()])
	}
	if g, ok := s.Gauges["index"]; ok {
		fmt.Fprintf(w, "  index:    %d clusters over %d entries, max radius %.3f, built in %s (%d extended)\n",
			g["clusters"], g["entries"], float64(g["max_radius_um"])/1e6,
			time.Duration(g["build_us"])*time.Microsecond, g["extended"])
	}
	stageNames := make([]string, 0, len(s.Stages))
	for n := range s.Stages {
		stageNames = append(stageNames, n)
	}
	sort.Strings(stageNames)
	for _, n := range stageNames {
		st := s.Stages[n]
		if st.Count == 0 {
			continue
		}
		fmt.Fprintf(w, "  stage %-16s n=%-4d total=%-12s mean=%-12s min=%-12s max=%s\n",
			n, st.Count, st.Total, st.Mean, st.Min, st.Max)
	}
}

// Report returns WriteReport's output as a string.
func (s Snapshot) Report() string {
	var b strings.Builder
	s.WriteReport(&b)
	return b.String()
}
