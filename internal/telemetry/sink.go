package telemetry

import (
	"encoding/json"
	"expvar"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
)

// Sink receives snapshots pushed out of the process by Collector.Flush
// (end of a CLI run, a periodic exporter tick, a test). Implementations
// must tolerate concurrent Emit calls.
type Sink interface {
	Emit(Snapshot)
}

// NopSink is the default sink: it drops every snapshot.
type NopSink struct{}

// Emit discards the snapshot.
func (NopSink) Emit(Snapshot) {}

// WriterSink JSON-encodes each snapshot (one object per line) to W.
type WriterSink struct {
	mu sync.Mutex
	W  io.Writer
}

// Emit writes the snapshot as a single JSON line; encoding errors are
// dropped (a sink must never fail the pipeline).
func (s *WriterSink) Emit(snap Snapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	enc := json.NewEncoder(s.W)
	_ = enc.Encode(snap)
}

// ExpvarSink publishes the most recent snapshot under an expvar name,
// so the standard /debug/vars endpoint picks it up.
type ExpvarSink struct {
	mu   sync.Mutex
	last Snapshot
}

// expvarSinks tracks names this package has already published, because
// expvar.Publish panics on duplicates and offers no unpublish. Repeat
// calls for the same name get the original sink back instead of a
// process crash (long-lived daemons re-run setup paths; tests register
// the same name across cases).
var (
	expvarMu    sync.Mutex
	expvarSinks = map[string]*ExpvarSink{}
)

// NewExpvarSink publishes a sink under name, or returns the sink
// already published under that name. A name previously published by
// other code (not via this constructor) cannot be taken over; in that
// case the returned sink is live but unpublished.
func NewExpvarSink(name string) *ExpvarSink {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if s, ok := expvarSinks[name]; ok {
		return s
	}
	s := &ExpvarSink{}
	expvarSinks[name] = s
	if expvar.Get(name) == nil {
		expvar.Publish(name, expvar.Func(func() any {
			s.mu.Lock()
			defer s.mu.Unlock()
			return s.last
		}))
	}
	return s
}

// Emit retains the snapshot as the published value.
func (s *ExpvarSink) Emit(snap Snapshot) {
	s.mu.Lock()
	s.last = snap
	s.mu.Unlock()
}

// Handler serves the collector's current snapshot. The snapshot is
// taken per request, so it is always live — no Flush needed.
//
// The default representation is indented JSON. Prometheus text
// exposition is selected by content negotiation — an Accept header
// naming text/plain or application/openmetrics-text (what a Prometheus
// scraper sends) — or explicitly with ?format=prometheus.
func Handler(c *Collector) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if wantsPrometheus(r) {
			w.Header().Set("Content-Type", PrometheusContentType)
			_ = c.Snapshot().WritePrometheus(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(c.Snapshot())
	})
}

// wantsPrometheus implements the handler's format selection.
func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "application/openmetrics-text")
}

// Serve starts an HTTP server on addr exposing the live JSON snapshot
// at /metrics (and at /). It returns the bound listener address — so
// addr may use port 0 — and a shutdown func. Serving happens on a
// background goroutine; errors after a successful bind are dropped.
func Serve(addr string, c *Collector) (bound string, shutdown func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(c))
	mux.Handle("/", Handler(c))
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
