package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PrometheusContentType is the Content-Type of the text exposition
// format version this package renders.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format, so the telemetry endpoint can be scraped directly:
//
//   - counters become scaguard_<name>_total counter families
//   - gauge sources become scaguard_<source>_<key> gauges
//   - derived rates become scaguard_<rate> gauges
//   - stage latencies become one scaguard_stage_duration_seconds
//     histogram family with a stage label; the internal log2-microsecond
//     buckets are exposed as cumulative le buckets in seconds (the
//     native exclusive upper bound is presented as Prometheus's
//     inclusive le — off by at most one observation per bucket edge)
//
// Output is deterministically ordered for diffable scrapes.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		metric := "scaguard_" + sanitizeMetric(n) + "_total"
		if err := writef(w, "# TYPE %s counter\n%s %d\n", metric, metric, s.Counters[n]); err != nil {
			return err
		}
	}

	sources := make([]string, 0, len(s.Gauges))
	for src := range s.Gauges {
		sources = append(sources, src)
	}
	sort.Strings(sources)
	for _, src := range sources {
		keys := make([]string, 0, len(s.Gauges[src]))
		for k := range s.Gauges[src] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			metric := "scaguard_" + sanitizeMetric(src) + "_" + sanitizeMetric(k)
			if err := writef(w, "# TYPE %s gauge\n%s %d\n", metric, metric, s.Gauges[src][k]); err != nil {
				return err
			}
		}
	}

	rates := []struct {
		name  string
		value float64
	}{
		{"scaguard_prune_rate", s.Derived.PruneRate},
		{"scaguard_lb_skip_rate", s.Derived.LowerBoundSkipRate},
		{"scaguard_abandon_rate", s.Derived.AbandonRate},
		{"scaguard_cache_block_hit_rate", s.Derived.CacheBlockHitRate},
		{"scaguard_cache_pair_hit_rate", s.Derived.CachePairHitRate},
	}
	for _, r := range rates {
		if err := writef(w, "# TYPE %s gauge\n%s %s\n", r.name, r.name, formatFloat(r.value)); err != nil {
			return err
		}
	}

	stages := make([]string, 0, len(s.Stages))
	for n := range s.Stages {
		stages = append(stages, n)
	}
	sort.Strings(stages)
	const hist = "scaguard_stage_duration_seconds"
	if err := writef(w, "# TYPE %s histogram\n", hist); err != nil {
		return err
	}
	for _, n := range stages {
		st := s.Stages[n]
		label := sanitizeLabel(n)
		// Buckets arrive non-cumulative, sorted ascending with the
		// catch-all (UpperMicros 0) last; accumulate into le form.
		cum := uint64(0)
		for _, b := range st.Buckets {
			if b.UpperMicros == 0 {
				continue // folded into +Inf below
			}
			cum += b.Count
			le := formatFloat(float64(b.UpperMicros) / 1e6)
			if err := writef(w, "%s_bucket{stage=%q,le=%q} %d\n", hist, label, le, cum); err != nil {
				return err
			}
		}
		if err := writef(w, "%s_bucket{stage=%q,le=\"+Inf\"} %d\n", hist, label, st.Count); err != nil {
			return err
		}
		if err := writef(w, "%s_sum{stage=%q} %s\n", hist, label, formatFloat(st.Total.Seconds())); err != nil {
			return err
		}
		if err := writef(w, "%s_count{stage=%q} %d\n", hist, label, st.Count); err != nil {
			return err
		}
	}
	return nil
}

// Prometheus returns WritePrometheus's output as a string.
func (s Snapshot) Prometheus() string {
	var b strings.Builder
	_ = s.WritePrometheus(&b)
	return b.String()
}

func writef(w io.Writer, format string, args ...any) error {
	_, err := fmt.Fprintf(w, format, args...)
	return err
}

// formatFloat renders a float the way Prometheus expects: shortest
// round-trip decimal notation.
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// sanitizeMetric maps an internal name onto the Prometheus metric-name
// alphabet [a-zA-Z0-9_:]. Internal names are snake_case already; this
// is a safety net for gauge sources registered by callers.
func sanitizeMetric(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		}
		return '_'
	}, s)
}

// sanitizeLabel strips characters that would need escaping inside a
// quoted label value.
func sanitizeLabel(s string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case '"', '\\', '\n':
			return '_'
		}
		return r
	}, s)
}
