// Package telemetry is the runtime instrumentation layer of the
// detection pipeline. The scan engine's pruning decisions, the
// detector's engine-cache behavior and the per-stage wall times of
// modeling vs scanning are all invisible from the outside — benchmarks
// can measure them offline, but a deployment watching live traffic
// cannot. This package makes them observable at a cost low enough for
// the hot path:
//
//   - Counters are fixed-index atomic uint64s — no maps, no labels, no
//     allocation on the increment path.
//   - Latencies go into log2-bucketed histograms (atomic buckets plus
//     count/sum/min/max), again allocation-free.
//   - Gauge sources (e.g. the scan DistCache's hit counters) register a
//     read callback and are polled only when a snapshot is taken.
//
// Everything hangs off a *Collector. A nil *Collector is the disabled
// state: every method nil-checks the receiver and returns immediately,
// so uninstrumented configurations pay one predictable branch per call
// site and nothing else. Timing call sites use the Now/ObserveSince
// pair, which skips the time.Now() syscall entirely when disabled.
//
// Snapshot() assembles a consistent-enough view for export: counters
// are read atomically one by one (each value is exact; sums across
// counters may be mid-update by design), histograms likewise. Sinks
// (sink.go) take snapshots out of the process: a no-op default, a JSON
// writer, an expvar publisher and an HTTP handler.
package telemetry

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Counter indexes one atomic event counter. The enum is the schema:
// adding a counter means adding an index and a name here, nothing else.
type Counter int

// Pipeline counters. Scan* count (target, entry) comparison outcomes —
// every comparison resolves to exactly one of Exact, LowerBoundSkipped
// or Abandoned, so their sum is the number of comparisons and
// (LowerBoundSkipped+Abandoned)/sum is the pruning rate.
const (
	// ScanTargets counts targets scanned against the repository.
	ScanTargets Counter = iota
	// ScanEntriesExact counts entry comparisons that ran the full DTW
	// and produced an exact score.
	ScanEntriesExact
	// ScanEntriesLowerBoundSkipped counts lower-bound cutoff hits:
	// entries skipped before any DTW because the cheap lower bound
	// already exceeded the running best. With the cascade enabled this
	// is the tier-3 (exact per-row envelope) skip; the cheaper tiers
	// count under ScanEntriesKimSkipped / ScanEntriesKeoghSkipped.
	ScanEntriesLowerBoundSkipped
	// ScanEntriesKimSkipped counts cascade tier-1 skips: entries pruned
	// by the O(1) aggregate bound (similarity.LowerBoundKim) before any
	// per-row work.
	ScanEntriesKimSkipped
	// ScanEntriesKeoghSkipped counts cascade tier-2 skips: entries
	// pruned by the O(n+m) envelope bound (similarity.LowerBoundKeogh)
	// after tier 1 failed to prune them.
	ScanEntriesKeoghSkipped
	// ScanEntriesAbandoned counts entries whose DTW was abandoned
	// row-wise partway through (dtw.DistanceAbandon proved the entry
	// cannot win).
	ScanEntriesAbandoned
	// DetectClassifications counts targets classified (including gated
	// ones).
	DetectClassifications
	// DetectGated counts targets short-circuited as benign by
	// construction (model too short, or no timer reads).
	DetectGated
	// DetectBatches counts ClassifyBatch calls.
	DetectBatches
	// DetectEngineRebuilds counts scan-engine rebuilds (repository
	// version or detector configuration changed).
	DetectEngineRebuilds
	// DetectEngineReuses counts classifications served by the cached
	// engine.
	DetectEngineReuses
	// ModelBuilds counts behavior models built.
	ModelBuilds
	// PanicsRecovered counts panics caught at pipeline goroutine
	// boundaries (scan workers, batch workers, stream stages) and
	// converted into error results instead of crashing the process.
	PanicsRecovered
	// DetectCancellations counts classifications aborted by context
	// cancellation or deadline expiry.
	DetectCancellations
	// StreamTargets counts targets entering the streaming pipeline.
	StreamTargets
	// StreamErrorResults counts stream targets that resolved to an
	// error result (panic, injected fault, cancellation) rather than a
	// verdict.
	StreamErrorResults
	// StreamRetries counts per-target retry attempts in the streaming
	// pipeline (stream.Config.Retries): each increment is one re-run of
	// a target's modeling or scan after a transient error.
	StreamRetries
	// ShardScans counts per-shard scan calls issued by the coordinator:
	// one per (target, shard) scatter.
	ShardScans
	// ShardScanFailures counts shard scans that failed (timeout, dead
	// remote, injected fault) after exhausting any retries; each one
	// degrades its scan to partial results.
	ShardScanFailures
	// ShardRemoteRetries counts remote-shard RPC retry attempts (each
	// increment is one re-sent request after a transient failure).
	ShardRemoteRetries
	// ShardCutoffBroadcasts counts cutoff updates pushed to remote
	// shards mid-scan — the cross-shard best-score broadcast doing its
	// job. Local shards share the cutoff cell directly and are not
	// counted.
	ShardCutoffBroadcasts
	// ShardDegradedScans counts coordinator scans that returned partial
	// results because at least one shard failed. One degraded scan
	// increments this exactly once no matter how many of its shards
	// died; ShardScanFailures counts the individual shard failures.
	ShardDegradedScans
	// ShardFailovers counts replica-group scans served by a non-first
	// choice: each increment is one replica passed over — because its
	// attempt failed or timed out, or because its circuit breaker was
	// open — with a later replica tried instead. A healthy fleet holds
	// this flat; a dead primary grows it once per scan until the backend
	// recovers and its breaker closes.
	ShardFailovers
	// BreakerOpens counts closed→open circuit-breaker transitions: a
	// backend hit its consecutive-failure threshold (or failed its
	// half-open probe) and is now quarantined from scans.
	BreakerOpens
	// BreakerHalfOpens counts open→half-open transitions: a quarantined
	// backend's open interval elapsed and one probe attempt (a scan or
	// the background health prober) was admitted.
	BreakerHalfOpens
	// BreakerCloses counts half-open→closed transitions: a probe
	// succeeded and the backend was re-admitted to scans.
	BreakerCloses
	// VCacheHits counts repository scans served from the verdict result
	// cache (internal/vcache) without running any comparison — the
	// memoized whole-scan outcome was reused.
	VCacheHits
	// VCacheMisses counts result-cache lookups that had to run the scan
	// (including lookups bypassed by an injected vcache.lookup fault).
	VCacheMisses
	// VCacheEvictions counts result-cache entries dropped by the LRU
	// bound to make room for newer outcomes.
	VCacheEvictions
	// VCacheCollapsed counts concurrent identical scans collapsed onto
	// another caller's in-flight computation (singleflight): each
	// increment is one scan that waited instead of recomputing.
	VCacheCollapsed
	// ServeRequests counts classification requests admitted by the
	// detection server (internal/serve): unary and batch /v1/classify
	// calls and /v1/classify/stream connections, after admission
	// control let them through.
	ServeRequests
	// ServeRejected counts requests shed by the server's admission gate
	// with 429 (per-key token bucket empty, global concurrency cap
	// saturated, or an injected serve.admit fault).
	ServeRejected
	// ServeRetries counts serve-layer re-runs of a failed unary
	// classification (serve.Config.Retry): each increment is one
	// additional attempt after a transient failure.
	ServeRetries
	// ServeHedges counts hedge attempts launched: a unary
	// classification outlived serve.Config.Hedge and a parallel second
	// attempt was started against the same target.
	ServeHedges
	// ServeHedgeWins counts hedged requests whose hedge attempt
	// resolved first — the primary was genuinely slow, not just the
	// timer short.
	ServeHedgeWins
	// ServeReloads counts successful POST /reload repository hot-swaps.
	ServeReloads
	// IndexClustersSkipped counts repository-index clusters whose whole
	// membership was bypassed on cheap per-entry certificates (or, in
	// approximate mode, force-skipped past the MaxClusters budget)
	// because the cluster's triangle-inequality gate said it cannot
	// beat the running cutoff. See docs/INDEXING.md.
	IndexClustersSkipped
	// IndexClustersDescended counts repository-index clusters whose
	// members were scored through the full pruning cascade because the
	// cluster could still contain the best match.
	IndexClustersDescended
	// IndexRebuilds counts repository-index constructions: full
	// pairwise-MST builds and incremental extensions alike (one per
	// indexed engine build).
	IndexRebuilds
	// WindowEmitted counts windows the sliding-window detector emitted a
	// verdict for — modelled and quiet/short windows alike.
	WindowEmitted
	// WindowHits counts emitted windows whose verdict was malicious.
	WindowHits
	// WindowQuiet counts emitted windows skipped without modeling
	// because they contained no events (quiet-gap windows included).
	WindowQuiet

	numCounters
)

var counterNames = [numCounters]string{
	ScanTargets:                  "scan_targets",
	ScanEntriesExact:             "scan_entries_exact",
	ScanEntriesLowerBoundSkipped: "scan_entries_lb_skipped",
	ScanEntriesKimSkipped:        "scan_entries_kim_skipped",
	ScanEntriesKeoghSkipped:      "scan_entries_keogh_skipped",
	ScanEntriesAbandoned:         "scan_entries_abandoned",
	DetectClassifications:        "detect_classifications",
	DetectGated:                  "detect_gated",
	DetectBatches:                "detect_batches",
	DetectEngineRebuilds:         "detect_engine_rebuilds",
	DetectEngineReuses:           "detect_engine_reuses",
	ModelBuilds:                  "model_builds",
	PanicsRecovered:              "panics_recovered",
	DetectCancellations:          "detect_cancellations",
	StreamTargets:                "stream_targets",
	StreamErrorResults:           "stream_error_results",
	StreamRetries:                "stream_retries",
	ShardScans:                   "shard_scans",
	ShardScanFailures:            "shard_scan_failures",
	ShardRemoteRetries:           "shard_remote_retries",
	ShardCutoffBroadcasts:        "shard_cutoff_broadcasts",
	ShardDegradedScans:           "shard_degraded_scans",
	ShardFailovers:               "shard_failovers",
	BreakerOpens:                 "breaker_opens",
	BreakerHalfOpens:             "breaker_half_opens",
	BreakerCloses:                "breaker_closes",
	VCacheHits:                   "vcache_hits",
	VCacheMisses:                 "vcache_misses",
	VCacheEvictions:              "vcache_evictions",
	VCacheCollapsed:              "vcache_collapsed",
	ServeRequests:                "serve_requests",
	ServeRejected:                "serve_rejected",
	ServeRetries:                 "serve_retries",
	ServeHedges:                  "serve_hedges",
	ServeHedgeWins:               "serve_hedge_wins",
	ServeReloads:                 "serve_reloads",
	IndexClustersSkipped:         "index_clusters_skipped",
	IndexClustersDescended:       "index_clusters_descended",
	IndexRebuilds:                "index_rebuilds",
	WindowEmitted:                "window_emitted",
	WindowHits:                   "window_hits",
	WindowQuiet:                  "window_quiet",
}

// String returns the counter's snapshot/export name.
func (c Counter) String() string {
	if c >= 0 && c < numCounters {
		return counterNames[c]
	}
	return "counter_unknown"
}

// Stage indexes one latency histogram.
type Stage int

// Pipeline stages. StageModel covers a whole model.Build; StageTrace,
// StageBBExtract and StageCST are its interior phases (simulation run,
// attack-relevant BB identification, CST measurement + flattening).
// StageScan is one repository scan pass (Scan or ScanBatch).
const (
	StageModel Stage = iota
	StageTrace
	StageBBExtract
	StageCST
	StageScan
	// StageStreamTarget is one target's end-to-end latency through the
	// streaming pipeline: intake to emitted result, modeling and scan
	// included.
	StageStreamTarget
	// StageShardScan is one shard's share of a scattered scan: the
	// coordinator observes each (target, shard) call, so the histogram's
	// spread is the straggler profile across shards.
	StageShardScan
	// StageServeRequest is one admitted request's end-to-end latency in
	// the detection server: admission to response written, resolution,
	// modeling and scan included (streaming connections observe the
	// whole connection).
	StageServeRequest
	// StageWindowModel is one window's modeling cost in the sliding-
	// window detector: event replay plus the incremental CST-BBS build,
	// scan excluded (that lands in StageScan via the detector seam).
	StageWindowModel

	numStages
)

var stageNames = [numStages]string{
	StageModel:        "model_build",
	StageTrace:        "model_trace",
	StageBBExtract:    "model_bb_extract",
	StageCST:          "model_cst_sim",
	StageScan:         "scan",
	StageStreamTarget: "stream_target",
	StageShardScan:    "shard_scan",
	StageServeRequest: "serve_request",
	StageWindowModel:  "window_model",
}

// String returns the stage's snapshot/export name.
func (s Stage) String() string {
	if s >= 0 && s < numStages {
		return stageNames[s]
	}
	return "stage_unknown"
}

// histBuckets is the number of log2 latency buckets. Bucket i counts
// observations with duration < 2^i microseconds (the last bucket is a
// catch-all), spanning 1µs .. ~34s — wider than any pipeline stage.
const histBuckets = 26

// histogram is an allocation-free latency histogram: log2 buckets over
// microseconds plus count/sum/min/max, all atomics.
type histogram struct {
	count   atomic.Uint64
	sumNS   atomic.Uint64
	minNS   atomic.Uint64 // valid only when count > 0
	maxNS   atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

func (h *histogram) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	ns := uint64(d.Nanoseconds())
	h.count.Add(1)
	h.sumNS.Add(ns)
	// bits.Len64 of the duration in whole microseconds is its log2
	// bucket: <1µs lands in bucket 0, [2^(i-1), 2^i) µs in bucket i.
	b := bits.Len64(ns / 1000)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.buckets[b].Add(1)
	for {
		old := h.maxNS.Load()
		if ns <= old || h.maxNS.CompareAndSwap(old, ns) {
			break
		}
	}
	for {
		old := h.minNS.Load()
		if (old != 0 && ns >= old) || h.minNS.CompareAndSwap(old, ns) {
			break
		}
	}
}

// GaugeFunc reads a set of named gauge values at snapshot time.
type GaugeFunc func() map[string]uint64

// Collector accumulates pipeline telemetry. All methods are safe for
// concurrent use, and all methods are no-ops on a nil receiver — a nil
// *Collector is how instrumentation is disabled.
type Collector struct {
	counters [numCounters]atomic.Uint64
	stages   [numStages]histogram

	mu     sync.Mutex
	gauges map[string]GaugeFunc
	sink   Sink
}

// NewCollector returns an empty collector with the no-op sink.
func NewCollector() *Collector { return &Collector{} }

// Inc adds one to a counter.
func (c *Collector) Inc(k Counter) { c.Add(k, 1) }

// Add adds n to a counter.
func (c *Collector) Add(k Counter, n uint64) {
	if c == nil {
		return
	}
	c.counters[k].Add(n)
}

// Counter returns the current value of a counter.
func (c *Collector) Counter(k Counter) uint64 {
	if c == nil {
		return 0
	}
	return c.counters[k].Load()
}

// Now returns the current time, or the zero time on a disabled
// collector — the Now/ObserveSince pair keeps the time.Now() call off
// the disabled fast path.
func (c *Collector) Now() time.Time {
	if c == nil {
		return time.Time{}
	}
	return time.Now()
}

// ObserveSince records time.Since(start) into a stage histogram. It is
// the companion of Now: a zero start (disabled collector, but also any
// caller that skipped timing) records nothing.
func (c *Collector) ObserveSince(s Stage, start time.Time) {
	if c == nil || start.IsZero() {
		return
	}
	c.stages[s].observe(time.Since(start))
}

// Observe records a duration into a stage histogram directly.
func (c *Collector) Observe(s Stage, d time.Duration) {
	if c == nil {
		return
	}
	c.stages[s].observe(d)
}

// RegisterGauges attaches a named gauge source, polled at snapshot
// time. Registering the same name again replaces the source, so
// re-wiring (e.g. a detector rebuilding its engine) is idempotent.
func (c *Collector) RegisterGauges(name string, fn GaugeFunc) {
	if c == nil || fn == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gauges == nil {
		c.gauges = make(map[string]GaugeFunc)
	}
	c.gauges[name] = fn
}

// SetSink attaches the sink Flush emits snapshots to. A nil sink
// restores the no-op default.
func (c *Collector) SetSink(s Sink) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sink = s
}

// Flush takes a snapshot and emits it to the attached sink (no-op sink
// by default). It returns the snapshot so call sites can reuse it.
func (c *Collector) Flush() Snapshot {
	snap := c.Snapshot()
	if c == nil {
		return snap
	}
	c.mu.Lock()
	sink := c.sink
	c.mu.Unlock()
	if sink != nil {
		sink.Emit(snap)
	}
	return snap
}
