package telemetry

import (
	"bytes"
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// A nil collector must absorb every call without panicking — that is
// the disabled fast path the hot code relies on.
func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	c.Inc(ScanTargets)
	c.Add(ScanEntriesExact, 10)
	c.Observe(StageScan, time.Millisecond)
	c.ObserveSince(StageScan, c.Now())
	c.RegisterGauges("x", func() map[string]uint64 { return nil })
	c.SetSink(NopSink{})
	if got := c.Counter(ScanTargets); got != 0 {
		t.Fatalf("nil collector counter = %d", got)
	}
	snap := c.Flush()
	if len(snap.Counters) != 0 && snap.Counters[ScanTargets.String()] != 0 {
		t.Fatalf("nil collector snapshot not empty: %+v", snap)
	}
	if !c.Now().IsZero() {
		t.Fatal("nil collector Now() should be the zero time")
	}
}

func TestCountersAndNames(t *testing.T) {
	c := NewCollector()
	c.Inc(ScanTargets)
	c.Add(ScanEntriesExact, 7)
	c.Add(ScanEntriesLowerBoundSkipped, 2)
	c.Inc(ScanEntriesAbandoned)
	if got := c.Counter(ScanEntriesExact); got != 7 {
		t.Fatalf("counter = %d, want 7", got)
	}
	snap := c.Snapshot()
	if snap.Counters["scan_targets"] != 1 || snap.Counters["scan_entries_exact"] != 7 {
		t.Fatalf("snapshot counters wrong: %+v", snap.Counters)
	}
	// Every counter has a distinct non-default name.
	seen := map[string]bool{}
	for k := Counter(0); k < numCounters; k++ {
		n := k.String()
		if n == "counter_unknown" || seen[n] {
			t.Fatalf("bad or duplicate counter name %q", n)
		}
		seen[n] = true
	}
	for s := Stage(0); s < numStages; s++ {
		if s.String() == "stage_unknown" {
			t.Fatalf("stage %d has no name", s)
		}
	}
}

func TestDerivedRates(t *testing.T) {
	c := NewCollector()
	c.Add(ScanEntriesExact, 60)
	c.Add(ScanEntriesLowerBoundSkipped, 30)
	c.Add(ScanEntriesAbandoned, 10)
	c.RegisterGauges("distcache", func() map[string]uint64 {
		return map[string]uint64{"block_hits": 3, "block_misses": 1, "pair_hits": 9, "pair_misses": 1}
	})
	d := c.Snapshot().Derived
	if d.PruneRate != 0.4 || d.LowerBoundSkipRate != 0.3 || d.AbandonRate != 0.1 {
		t.Fatalf("derived scan rates wrong: %+v", d)
	}
	if d.CacheBlockHitRate != 0.75 || d.CachePairHitRate != 0.9 {
		t.Fatalf("derived cache rates wrong: %+v", d)
	}
}

// Cascade tier skips count as lower-bound skips in the derived rates:
// with the cascade enabled an entry pruned by the Kim or Keogh tier
// must raise prune_rate and lb_skip_rate exactly like a per-row skip.
func TestDerivedRatesCascadeTiers(t *testing.T) {
	c := NewCollector()
	c.Add(ScanEntriesExact, 50)
	c.Add(ScanEntriesKimSkipped, 20)
	c.Add(ScanEntriesKeoghSkipped, 5)
	c.Add(ScanEntriesLowerBoundSkipped, 5)
	c.Add(ScanEntriesAbandoned, 20)
	d := c.Snapshot().Derived
	if d.PruneRate != 0.5 || d.LowerBoundSkipRate != 0.3 || d.AbandonRate != 0.2 {
		t.Fatalf("derived cascade rates wrong: %+v", d)
	}
}

func TestHistogram(t *testing.T) {
	c := NewCollector()
	c.Observe(StageScan, 500*time.Nanosecond) // bucket 0 (<1µs)
	c.Observe(StageScan, 3*time.Microsecond)  // bucket 2 ([2,4)µs)
	c.Observe(StageScan, 3*time.Microsecond)
	c.Observe(StageScan, time.Hour) // clamped to the catch-all bucket
	st := c.Snapshot().Stages[StageScan.String()]
	if st.Count != 4 {
		t.Fatalf("count = %d, want 4", st.Count)
	}
	wantTotal := 500*time.Nanosecond + 6*time.Microsecond + time.Hour
	if st.Total != wantTotal {
		t.Fatalf("total = %v, want %v", st.Total, wantTotal)
	}
	if st.Min != 500*time.Nanosecond || st.Max != time.Hour {
		t.Fatalf("min/max = %v/%v", st.Min, st.Max)
	}
	if st.Mean != wantTotal/4 {
		t.Fatalf("mean = %v", st.Mean)
	}
	var b0, b2, top uint64
	for _, b := range st.Buckets {
		switch b.UpperMicros {
		case 1:
			b0 = b.Count
		case 4:
			b2 = b.Count
		case 0:
			top = b.Count
		}
	}
	if b0 != 1 || b2 != 2 || top != 1 {
		t.Fatalf("buckets wrong: %+v", st.Buckets)
	}
}

func TestObserveSinceZeroStartRecordsNothing(t *testing.T) {
	c := NewCollector()
	c.ObserveSince(StageScan, time.Time{})
	if st := c.Snapshot().Stages[StageScan.String()]; st.Count != 0 {
		t.Fatalf("zero start recorded an observation: %+v", st)
	}
}

func TestWriterSinkEmitsJSONLines(t *testing.T) {
	var buf bytes.Buffer
	c := NewCollector()
	c.SetSink(&WriterSink{W: &buf})
	c.Inc(ScanTargets)
	c.Flush()
	c.Flush()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(lines[0]), &snap); err != nil {
		t.Fatalf("line not JSON: %v", err)
	}
	if snap.Counters["scan_targets"] != 1 {
		t.Fatalf("decoded snapshot wrong: %+v", snap.Counters)
	}
}

func TestExpvarSink(t *testing.T) {
	c := NewCollector()
	sink := NewExpvarSink("telemetry_test_sink")
	c.SetSink(sink)
	c.Add(ScanEntriesExact, 5)
	c.Flush()
	v := expvar.Get("telemetry_test_sink")
	if v == nil {
		t.Fatal("expvar name not published")
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
		t.Fatalf("expvar value not a JSON snapshot: %v", err)
	}
	if snap.Counters["scan_entries_exact"] != 5 {
		t.Fatalf("expvar snapshot wrong: %+v", snap.Counters)
	}
}

func TestHTTPHandlerServesLiveSnapshot(t *testing.T) {
	c := NewCollector()
	c.Add(ScanEntriesExact, 3)
	srv := httptest.NewServer(Handler(c))
	defer srv.Close()
	get := func() Snapshot {
		resp, err := http.Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("content type %q", ct)
		}
		var snap Snapshot
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
		return snap
	}
	if snap := get(); snap.Counters["scan_entries_exact"] != 3 {
		t.Fatalf("snapshot = %+v", snap.Counters)
	}
	c.Add(ScanEntriesExact, 2) // live: no Flush needed
	if snap := get(); snap.Counters["scan_entries_exact"] != 5 {
		t.Fatalf("snapshot not live: %+v", snap.Counters)
	}
}

func TestServeBindsAndShutsDown(t *testing.T) {
	c := NewCollector()
	addr, shutdown, err := Serve("127.0.0.1:0", c)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if err := shutdown(); err != nil {
		t.Fatal(err)
	}
}

func TestReportMentionsKeyMetrics(t *testing.T) {
	c := NewCollector()
	c.Add(ScanEntriesExact, 6)
	c.Add(ScanEntriesLowerBoundSkipped, 4)
	c.Observe(StageScan, 2*time.Millisecond)
	c.RegisterGauges("distcache", func() map[string]uint64 {
		return map[string]uint64{"blocks": 10, "pairs": 20, "block_hits": 1, "block_misses": 1, "pair_hits": 1, "pair_misses": 3}
	})
	rep := c.Snapshot().Report()
	for _, want := range []string{"pruning:  40.0%", "distcache", "stage scan", "scan_entries_exact"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

// Concurrent writers plus a snapshotting reader: counters must be
// monotone between successive snapshots and land on the exact total.
func TestConcurrentSnapshotsMonotone(t *testing.T) {
	c := NewCollector()
	const writers, perWriter = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var snapErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			cur := c.Snapshot().Counters[ScanEntriesExact.String()]
			if cur < last {
				snapErr = &nonMonotoneError{prev: last, cur: cur}
				return
			}
			last = cur
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc(ScanEntriesExact)
				c.Observe(StageScan, time.Microsecond)
			}
		}()
	}
	wgWait := make(chan struct{})
	go func() { wg.Wait(); close(wgWait) }()
	// Let writers finish, then stop the snapshotter.
	for {
		if c.Counter(ScanEntriesExact) == writers*perWriter {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-wgWait
	if snapErr != nil {
		t.Fatal(snapErr)
	}
	if got := c.Counter(ScanEntriesExact); got != writers*perWriter {
		t.Fatalf("final count %d, want %d", got, writers*perWriter)
	}
	if st := c.Snapshot().Stages[StageScan.String()]; st.Count != writers*perWriter {
		t.Fatalf("histogram count %d, want %d", st.Count, writers*perWriter)
	}
}

type nonMonotoneError struct{ prev, cur uint64 }

func (e *nonMonotoneError) Error() string {
	return "snapshot counter went backwards"
}
