package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse assembles a textual program. The syntax mirrors Disassemble's
// output plus a few directives:
//
//	; comment                       (also "#")
//	.code 0x400000                  code base (default 0x400000)
//	.database 0x10000000            automatic data region base
//	.entry main                     entry label (default: first insn)
//	.data buf 256                   reserved data segment
//	.data tab 1024 shared           shared segment (FR-style library page)
//	.data io 64 @0x20000000         explicitly placed segment
//	main:
//	  mov r0, 42                    immediates: decimal, 0x hex, negative
//	  mov r1, $buf                  $name = address of a data segment
//	  mov r2, [r1+8]                memory: [base + index*scale + disp]
//	  mov [buf], r2                 bare segment names inside [] resolve
//	  lea r3, [r1+r2*4+16]
//	  clflush [r1]
//	  rdtscp r4
//	  cmp r0, 10
//	  jl main
//	  hlt
//
// Parse enforces resource limits so untrusted input (streamed target
// specs, fuzz corpora) cannot balloon memory before simulation ever
// starts. Exceeding a limit returns a *LimitError.
const (
	// MaxParseInstructions bounds emitted instructions per program. Real
	// PoCs are a few hundred instructions; 1<<16 leaves two orders of
	// magnitude of headroom.
	MaxParseInstructions = 1 << 16
	// MaxParseLabels bounds label definitions per program.
	MaxParseLabels = 1 << 12
	// MaxParseDataSegments bounds .data directives per program.
	MaxParseDataSegments = 1 << 10
)

// LimitError reports input that exceeds one of Parse's resource
// limits. Detect it with errors.As to distinguish "hostile or corrupt
// input" from a plain syntax error.
type LimitError struct {
	Program string // program name passed to Parse
	What    string // exhausted resource: "instructions", "labels", "data segments"
	Limit   int
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("%s: too many %s (limit %d)", e.Program, e.What, e.Limit)
}

// Two-operand forms are "op dst, src"; branches take one label operand.
func Parse(name, src string) (*Program, error) {
	var b *Builder
	codeBase := uint64(0x40_0000)
	dataBase := uint64(0)
	entry := ""
	type dataDecl struct {
		name   string
		size   uint64
		shared bool
		addr   uint64
		hasAt  bool
		line   int
	}
	var datas []dataDecl

	lines := strings.Split(src, "\n")
	errf := func(ln int, format string, args ...any) error {
		return fmt.Errorf("%s:%d: %s", name, ln+1, fmt.Sprintf(format, args...))
	}

	// Pass 1: directives (so .code/.database anywhere in the file apply
	// before instructions are emitted).
	for i, raw := range lines {
		line := stripComment(raw)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case ".code":
			if len(fields) != 2 {
				return nil, errf(i, ".code wants one address")
			}
			v, err := parseUint(fields[1])
			if err != nil {
				return nil, errf(i, "bad .code address %q", fields[1])
			}
			codeBase = v
		case ".database":
			if len(fields) != 2 {
				return nil, errf(i, ".database wants one address")
			}
			v, err := parseUint(fields[1])
			if err != nil {
				return nil, errf(i, "bad .database address %q", fields[1])
			}
			dataBase = v
		case ".entry":
			if len(fields) != 2 {
				return nil, errf(i, ".entry wants one label")
			}
			entry = fields[1]
		case ".data":
			d := dataDecl{line: i}
			rest := fields[1:]
			if len(rest) < 2 {
				return nil, errf(i, ".data wants: name size [shared] [@addr]")
			}
			d.name = rest[0]
			sz, err := parseUint(rest[1])
			if err != nil {
				return nil, errf(i, "bad .data size %q", rest[1])
			}
			d.size = sz
			for _, f := range rest[2:] {
				switch {
				case f == "shared":
					d.shared = true
				case strings.HasPrefix(f, "@"):
					a, err := parseUint(f[1:])
					if err != nil {
						return nil, errf(i, "bad .data address %q", f)
					}
					d.addr, d.hasAt = a, true
				default:
					return nil, errf(i, "unknown .data attribute %q", f)
				}
			}
			if len(datas) >= MaxParseDataSegments {
				return nil, &LimitError{Program: name, What: "data segments", Limit: MaxParseDataSegments}
			}
			datas = append(datas, d)
		default:
			if strings.HasPrefix(fields[0], ".") {
				return nil, errf(i, "unknown directive %s", fields[0])
			}
		}
	}

	b = NewBuilder(name, codeBase)
	if dataBase != 0 {
		b.SetDataBase(dataBase)
	}
	symbols := make(map[string]uint64)
	for _, d := range datas {
		var addr uint64
		if d.hasAt {
			addr = b.DataAt(d.name, d.addr, d.size, nil, d.shared)
		} else {
			addr = b.Bytes(d.name, d.size, d.shared)
		}
		symbols[d.name] = addr
	}
	if entry != "" {
		b.Entry(entry)
	}

	// Pass 2: labels and instructions.
	insns, labels := 0, 0
	for i, raw := range lines {
		line := stripComment(raw)
		if line == "" || strings.HasPrefix(line, ".") {
			continue
		}
		// Leading labels (possibly several, "a: b: insn").
		for {
			idx := strings.Index(line, ":")
			if idx < 0 {
				break
			}
			head := strings.TrimSpace(line[:idx])
			if head == "" || strings.ContainsAny(head, " \t,[]") {
				break
			}
			if labels++; labels > MaxParseLabels {
				return nil, &LimitError{Program: name, What: "labels", Limit: MaxParseLabels}
			}
			b.Label(head)
			line = strings.TrimSpace(line[idx+1:])
		}
		if line == "" {
			continue
		}
		if insns++; insns > MaxParseInstructions {
			return nil, &LimitError{Program: name, What: "instructions", Limit: MaxParseInstructions}
		}
		if err := parseInsn(b, line, symbols); err != nil {
			return nil, errf(i, "%v", err)
		}
	}
	if b.Err() != nil {
		return nil, fmt.Errorf("%s: %w", name, b.Err())
	}
	return b.Build()
}

func stripComment(s string) string {
	if i := strings.IndexAny(s, ";#"); i >= 0 {
		s = s[:i]
	}
	return strings.TrimSpace(s)
}

func parseUint(s string) (uint64, error) {
	return strconv.ParseUint(strings.TrimPrefix(strings.ToLower(s), "+"), 0, 64)
}

var branchOps = map[string]Opcode{
	"jmp": JMP, "je": JE, "jne": JNE, "jl": JL, "jle": JLE,
	"jg": JG, "jge": JGE, "jb": JB, "jae": JAE, "call": CALL,
}

var plainOps = map[string]Opcode{
	"mov": MOV, "lea": LEA, "add": ADD, "sub": SUB, "mul": MUL,
	"xor": XOR, "and": AND, "or": OR, "shl": SHL, "shr": SHR,
	"cmp": CMP, "test": TEST, "inc": INC, "dec": DEC,
	"push": PUSH, "pop": POP, "clflush": CLFLUSH, "rdtscp": RDTSCP,
}

// parseInsn assembles one instruction line onto the builder.
func parseInsn(b *Builder, line string, symbols map[string]uint64) error {
	mnemonic := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mnemonic, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	mnemonic = strings.ToLower(mnemonic)

	switch mnemonic {
	case "nop":
		b.Nop()
		return expectNoOperands(mnemonic, rest)
	case "ret":
		b.Ret()
		return expectNoOperands(mnemonic, rest)
	case "hlt":
		b.Hlt()
		return expectNoOperands(mnemonic, rest)
	case "lfence":
		b.Lfence()
		return expectNoOperands(mnemonic, rest)
	case "mfence":
		b.Mfence()
		return expectNoOperands(mnemonic, rest)
	}

	if op, ok := branchOps[mnemonic]; ok {
		label := strings.TrimSpace(rest)
		if label == "" || strings.ContainsAny(label, " ,[]") {
			return fmt.Errorf("%s wants one label operand, got %q", mnemonic, rest)
		}
		// Builder's branch helpers resolve labels at Build time.
		switch op {
		case JMP:
			b.Jmp(label)
		case JE:
			b.Je(label)
		case JNE:
			b.Jne(label)
		case JL:
			b.Jl(label)
		case JLE:
			b.Jle(label)
		case JG:
			b.Jg(label)
		case JGE:
			b.Jge(label)
		case JB:
			b.Jb(label)
		case JAE:
			b.Jae(label)
		case CALL:
			b.Call(label)
		}
		return nil
	}

	op, ok := plainOps[mnemonic]
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	ops, err := splitOperands(rest)
	if err != nil {
		return err
	}
	parsed := make([]Operand, len(ops))
	for i, o := range ops {
		p, err := parseOperand(o, symbols)
		if err != nil {
			return err
		}
		parsed[i] = p
	}
	switch op {
	case INC, DEC, PUSH, POP, CLFLUSH, RDTSCP:
		if len(parsed) != 1 {
			return fmt.Errorf("%s wants one operand", mnemonic)
		}
		if op == RDTSCP {
			if parsed[0].Kind != OpReg {
				return fmt.Errorf("rdtscp wants a register")
			}
			b.Rdtscp(parsed[0].Base)
			return nil
		}
		b.Raw(op, parsed[0], None())
		return nil
	default:
		if len(parsed) != 2 {
			return fmt.Errorf("%s wants two operands", mnemonic)
		}
		if op == LEA {
			if parsed[0].Kind != OpReg || parsed[1].Kind != OpMem {
				return fmt.Errorf("lea wants: lea reg, [mem]")
			}
			b.Lea(parsed[0].Base, parsed[1])
			return nil
		}
		b.Raw(op, parsed[0], parsed[1])
		return nil
	}
}

func expectNoOperands(m, rest string) error {
	if strings.TrimSpace(rest) != "" {
		return fmt.Errorf("%s takes no operands", m)
	}
	return nil
}

func splitOperands(s string) ([]string, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	// Split on the top-level comma (none occur inside brackets in this
	// syntax, but guard anyway).
	depth := 0
	var out []string
	cur := strings.Builder{}
	for _, r := range s {
		switch r {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(cur.String()))
				cur.Reset()
				continue
			}
		}
		cur.WriteRune(r)
	}
	out = append(out, strings.TrimSpace(cur.String()))
	for _, o := range out {
		if o == "" {
			return nil, fmt.Errorf("empty operand in %q", s)
		}
	}
	return out, nil
}

func parseReg(s string) (Reg, bool) {
	s = strings.ToLower(s)
	if !strings.HasPrefix(s, "r") {
		return 0, false
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, false
	}
	return Reg(n), true
}

// parseOperand parses a register, immediate, $symbol or memory operand.
func parseOperand(s string, symbols map[string]uint64) (Operand, error) {
	s = strings.TrimSpace(s)
	if r, ok := parseReg(s); ok {
		return R(r), nil
	}
	if strings.HasPrefix(s, "$") {
		addr, ok := symbols[s[1:]]
		if !ok {
			return Operand{}, fmt.Errorf("unknown data symbol %q", s[1:])
		}
		return Imm(int64(addr)), nil
	}
	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return Operand{}, fmt.Errorf("unterminated memory operand %q", s)
		}
		return parseMem(s[1:len(s)-1], symbols)
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return Operand{}, fmt.Errorf("bad operand %q", s)
	}
	return Imm(v), nil
}

// parseMem parses the inside of [...]: terms joined by +/- where each
// term is a register, reg*scale, a symbol, or a displacement.
func parseMem(s string, symbols map[string]uint64) (Operand, error) {
	out := Operand{Kind: OpMem, Base: RegNone, Index: RegNone, Scale: 1}
	s = strings.TrimSpace(s)
	if s == "" {
		return Operand{}, fmt.Errorf("empty memory operand")
	}
	// Tokenize into signed terms.
	var terms []string
	var signs []int64
	cur := strings.Builder{}
	sign := int64(1)
	flush := func() error {
		t := strings.TrimSpace(cur.String())
		if t == "" {
			return fmt.Errorf("malformed memory operand %q", s)
		}
		terms = append(terms, t)
		signs = append(signs, sign)
		cur.Reset()
		return nil
	}
	for i, r := range s {
		switch r {
		case '+':
			if err := flush(); err != nil {
				return Operand{}, err
			}
			sign = 1
		case '-':
			if i == 0 {
				sign = -1
				continue
			}
			if err := flush(); err != nil {
				return Operand{}, err
			}
			sign = -1
		default:
			cur.WriteRune(r)
		}
	}
	if err := flush(); err != nil {
		return Operand{}, err
	}

	for i, t := range terms {
		neg := signs[i] < 0
		switch {
		case strings.Contains(t, "*"):
			parts := strings.SplitN(t, "*", 2)
			r, ok := parseReg(strings.TrimSpace(parts[0]))
			if !ok {
				return Operand{}, fmt.Errorf("bad index register in %q", t)
			}
			sc, err := strconv.Atoi(strings.TrimSpace(parts[1]))
			if err != nil || (sc != 1 && sc != 2 && sc != 4 && sc != 8) {
				return Operand{}, fmt.Errorf("bad scale in %q", t)
			}
			if neg {
				return Operand{}, fmt.Errorf("negative index term %q", t)
			}
			if out.Index != RegNone {
				return Operand{}, fmt.Errorf("two index terms in %q", s)
			}
			out.Index, out.Scale = r, uint8(sc)
		default:
			if r, ok := parseReg(t); ok {
				if neg {
					return Operand{}, fmt.Errorf("negative register term %q", t)
				}
				switch {
				case out.Base == RegNone:
					out.Base = r
				case out.Index == RegNone:
					out.Index, out.Scale = r, 1
				default:
					return Operand{}, fmt.Errorf("too many registers in %q", s)
				}
				continue
			}
			if addr, ok := symbols[t]; ok {
				d := int64(addr)
				if neg {
					d = -d
				}
				out.Disp += d
				continue
			}
			v, err := strconv.ParseInt(t, 0, 64)
			if err != nil {
				return Operand{}, fmt.Errorf("bad term %q in memory operand", t)
			}
			if neg {
				v = -v
			}
			out.Disp += v
		}
	}
	return out, nil
}
