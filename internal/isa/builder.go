package isa

import (
	"fmt"
	"sort"
)

// instruction sizes are synthetic but stable: every instruction occupies
// a fixed number of bytes so that mutation passes can insert code without
// perturbing unrelated addresses in surprising ways.
const defaultInsnSize = 4

// pendingRef records a branch whose label target is not yet defined.
type pendingRef struct {
	insn  int // index into insns
	label string
}

// Builder assembles a Program instruction by instruction. It supports
// forward label references, data segment allocation and ground-truth
// attack-region marking. The zero Builder is not usable; call NewBuilder.
//
// Typical use:
//
//	b := isa.NewBuilder("poc", 0x400000)
//	probe := b.Bytes("probe", 4096, true)
//	b.Label("loop")
//	b.Clflush(isa.Mem(isa.R1, 0))
//	b.Jmp("loop")
//	prog, err := b.Build()
type Builder struct {
	name     string
	codeBase uint64
	dataBase uint64
	nextAddr uint64
	nextData uint64
	insns    []Instruction
	labels   map[string]uint64
	pending  []pendingRef
	data     []DataSegment
	entry    string
	marking  bool
	err      error
}

// DefaultDataBase is where the data region starts when the builder's
// code base leaves the default gap.
const DefaultDataBase = 0x10000000

// NewBuilder creates a Builder emitting code at codeBase. Data segments
// are laid out from DefaultDataBase (override with SetDataBase).
func NewBuilder(name string, codeBase uint64) *Builder {
	return &Builder{
		name:     name,
		codeBase: codeBase,
		dataBase: DefaultDataBase,
		nextAddr: codeBase,
		nextData: DefaultDataBase,
		labels:   make(map[string]uint64),
	}
}

// SetDataBase relocates the data region; must be called before the first
// data allocation.
func (b *Builder) SetDataBase(base uint64) *Builder {
	if b.nextData != b.dataBase {
		b.fail("SetDataBase after data was allocated")
		return b
	}
	b.dataBase = base
	b.nextData = base
	return b
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("builder %q: %s", b.name, fmt.Sprintf(format, args...))
	}
}

// Err returns the first error recorded while building.
func (b *Builder) Err() error { return b.err }

// PC returns the address the next emitted instruction will receive.
func (b *Builder) PC() uint64 { return b.nextAddr }

// Name returns the program name.
func (b *Builder) Name() string { return b.name }

// Label defines a label at the current position. Labels may be referenced
// by branches before or after their definition.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.fail("duplicate label %q", name)
		return b
	}
	b.labels[name] = b.nextAddr
	return b
}

// Entry declares the label execution starts from; defaults to the first
// instruction when never called.
func (b *Builder) Entry(label string) *Builder {
	b.entry = label
	return b
}

// BeginAttack starts a ground-truth attack-relevant region: every
// instruction emitted until EndAttack carries the Attack mark. The mark
// is evaluation metadata only (Table IV ground truth).
func (b *Builder) BeginAttack() *Builder { b.marking = true; return b }

// EndAttack closes the ground-truth attack-relevant region.
func (b *Builder) EndAttack() *Builder { b.marking = false; return b }

// Bytes reserves a zero-initialized data segment of size bytes and
// returns its base address. shared marks the segment as shared memory.
func (b *Builder) Bytes(name string, size uint64, shared bool) uint64 {
	return b.DataInit(name, size, nil, shared)
}

// DataInit reserves a data segment with explicit initial contents.
func (b *Builder) DataInit(name string, size uint64, init []byte, shared bool) uint64 {
	if size == 0 {
		b.fail("data segment %q: zero size", name)
		return 0
	}
	addr := b.nextData
	if !b.addSegment(DataSegment{Name: name, Addr: addr, Size: size, Init: init, Shared: shared}) {
		return 0
	}
	// Keep segments line-disjoint: round the cursor up to the next
	// 64-byte boundary so two segments never share a cache line.
	b.nextData = (addr + size + 63) &^ 63
	return addr
}

// DataAt places a data segment at an explicit address outside the
// builder's automatic data region (e.g. the shared-library region a
// Flush+Reload PoC monitors). The address is the caller's business; it
// must not overlap other segments.
func (b *Builder) DataAt(name string, addr, size uint64, init []byte, shared bool) uint64 {
	if size == 0 {
		b.fail("data segment %q: zero size", name)
		return 0
	}
	b.addSegment(DataSegment{Name: name, Addr: addr, Size: size, Init: init, Shared: shared})
	return addr
}

func (b *Builder) addSegment(seg DataSegment) bool {
	for _, d := range b.data {
		if d.Name == seg.Name {
			b.fail("duplicate data segment %q", seg.Name)
			return false
		}
	}
	b.data = append(b.data, seg)
	return true
}

// emit appends one instruction.
func (b *Builder) emit(op Opcode, dst, src Operand) *Builder {
	in := Instruction{
		Addr:   b.nextAddr,
		Size:   defaultInsnSize,
		Op:     op,
		Dst:    dst,
		Src:    src,
		Attack: b.marking,
	}
	b.insns = append(b.insns, in)
	b.nextAddr += uint64(in.Size)
	return b
}

// branch emits a branch to a label, recording a fixup if the label is
// still undefined.
func (b *Builder) branch(op Opcode, label string) *Builder {
	b.emit(op, Imm(0), None())
	b.pending = append(b.pending, pendingRef{insn: len(b.insns) - 1, label: label})
	return b
}

// --- instruction helpers ------------------------------------------------

// Nop emits a no-op.
func (b *Builder) Nop() *Builder { return b.emit(NOP, None(), None()) }

// Mov emits dst <- src (register move, load, or store).
func (b *Builder) Mov(dst, src Operand) *Builder { return b.emit(MOV, dst, src) }

// Lea emits dst <- effective address of src (src must be a memory operand).
func (b *Builder) Lea(dst Reg, src Operand) *Builder { return b.emit(LEA, R(dst), src) }

// Add emits dst <- dst + src.
func (b *Builder) Add(dst, src Operand) *Builder { return b.emit(ADD, dst, src) }

// Sub emits dst <- dst - src.
func (b *Builder) Sub(dst, src Operand) *Builder { return b.emit(SUB, dst, src) }

// Inc emits dst <- dst + 1.
func (b *Builder) Inc(dst Operand) *Builder { return b.emit(INC, dst, None()) }

// Dec emits dst <- dst - 1.
func (b *Builder) Dec(dst Operand) *Builder { return b.emit(DEC, dst, None()) }

// Mul emits dst <- dst * src (low 64 bits).
func (b *Builder) Mul(dst, src Operand) *Builder { return b.emit(MUL, dst, src) }

// Xor emits dst <- dst ^ src.
func (b *Builder) Xor(dst, src Operand) *Builder { return b.emit(XOR, dst, src) }

// And emits dst <- dst & src.
func (b *Builder) And(dst, src Operand) *Builder { return b.emit(AND, dst, src) }

// Or emits dst <- dst | src.
func (b *Builder) Or(dst, src Operand) *Builder { return b.emit(OR, dst, src) }

// Shl emits dst <- dst << src.
func (b *Builder) Shl(dst, src Operand) *Builder { return b.emit(SHL, dst, src) }

// Shr emits dst <- dst >> src (logical).
func (b *Builder) Shr(dst, src Operand) *Builder { return b.emit(SHR, dst, src) }

// Cmp emits flags <- compare(a, b).
func (b *Builder) Cmp(a, bb Operand) *Builder { return b.emit(CMP, a, bb) }

// Test emits flags <- a & b (sets ZF/SF, discards result).
func (b *Builder) Test(a, bb Operand) *Builder { return b.emit(TEST, a, bb) }

// Jmp emits an unconditional jump to label.
func (b *Builder) Jmp(label string) *Builder { return b.branch(JMP, label) }

// Je emits jump-if-equal (ZF set).
func (b *Builder) Je(label string) *Builder { return b.branch(JE, label) }

// Jne emits jump-if-not-equal.
func (b *Builder) Jne(label string) *Builder { return b.branch(JNE, label) }

// Jl emits jump-if-less (signed).
func (b *Builder) Jl(label string) *Builder { return b.branch(JL, label) }

// Jle emits jump-if-less-or-equal (signed).
func (b *Builder) Jle(label string) *Builder { return b.branch(JLE, label) }

// Jg emits jump-if-greater (signed).
func (b *Builder) Jg(label string) *Builder { return b.branch(JG, label) }

// Jge emits jump-if-greater-or-equal (signed).
func (b *Builder) Jge(label string) *Builder { return b.branch(JGE, label) }

// Jb emits jump-if-below (unsigned).
func (b *Builder) Jb(label string) *Builder { return b.branch(JB, label) }

// Jae emits jump-if-above-or-equal (unsigned).
func (b *Builder) Jae(label string) *Builder { return b.branch(JAE, label) }

// Call emits a call to label (return address pushed on the stack).
func (b *Builder) Call(label string) *Builder { return b.branch(CALL, label) }

// Ret emits a return.
func (b *Builder) Ret() *Builder { return b.emit(RET, None(), None()) }

// Push emits a stack push of src.
func (b *Builder) Push(src Operand) *Builder { return b.emit(PUSH, src, None()) }

// Pop emits a stack pop into dst.
func (b *Builder) Pop(dst Operand) *Builder { return b.emit(POP, dst, None()) }

// Clflush emits a cache-line flush of the address named by mem.
func (b *Builder) Clflush(mem Operand) *Builder { return b.emit(CLFLUSH, mem, None()) }

// Rdtscp emits a serialized timestamp read into dst.
func (b *Builder) Rdtscp(dst Reg) *Builder { return b.emit(RDTSCP, R(dst), None()) }

// Lfence emits a load fence (serializes speculation).
func (b *Builder) Lfence() *Builder { return b.emit(LFENCE, None(), None()) }

// Mfence emits a full memory fence.
func (b *Builder) Mfence() *Builder { return b.emit(MFENCE, None(), None()) }

// Hlt emits the halt instruction that terminates the process.
func (b *Builder) Hlt() *Builder { return b.emit(HLT, None(), None()) }

// Raw appends a pre-built instruction body (opcode and operands) at the
// current address; used by the mutation engine.
func (b *Builder) Raw(op Opcode, dst, src Operand) *Builder { return b.emit(op, dst, src) }

// --- finalization -------------------------------------------------------

// Build resolves label references, validates and returns the Program.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.insns) == 0 {
		return nil, fmt.Errorf("builder %q: empty program", b.name)
	}
	for _, ref := range b.pending {
		addr, ok := b.labels[ref.label]
		if !ok {
			return nil, fmt.Errorf("builder %q: undefined label %q", b.name, ref.label)
		}
		b.insns[ref.insn].Dst = Imm(int64(addr))
	}
	entry := b.insns[0].Addr
	if b.entry != "" {
		a, ok := b.labels[b.entry]
		if !ok {
			return nil, fmt.Errorf("builder %q: undefined entry label %q", b.name, b.entry)
		}
		entry = a
	}
	labels := make(map[string]uint64, len(b.labels))
	for k, v := range b.labels {
		labels[k] = v
	}
	data := make([]DataSegment, len(b.data))
	copy(data, b.data)
	sort.Slice(data, func(i, j int) bool { return data[i].Addr < data[j].Addr })
	p := &Program{
		Name:   b.name,
		Entry:  entry,
		Insns:  append([]Instruction(nil), b.insns...),
		Data:   data,
		Labels: labels,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error; for use in tests and in the
// static attack corpus where programs are compile-time constants.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
