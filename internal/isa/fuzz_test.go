package isa_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cfg"
	"repro/internal/isa"
)

// FuzzParse feeds arbitrary text through the assembler and asserts the
// parser's contract: it never panics, every successfully parsed program
// passes Validate (Build enforces it, so a violation means the two
// disagree), and a parse→reassemble→parse round trip reproduces the
// same instruction stream and the same CFG block count.
//
// Run the short CI pass with `make fuzz-short`; the seeds double as
// regression tests under plain `go test`.
func FuzzParse(f *testing.F) {
	for _, path := range seedFiles(f) {
		src, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	f.Add("mov r0, 42\nhlt\n")
	f.Add(".data buf 64\n  mov r0, $buf\n  clflush [r0]\n  rdtscp r1\n  mov r2, [r0]\n  rdtscp r3\n  hlt\n")
	f.Add(".code 0x1000\n.entry main\nmain:\n  lea r3, [r1+r2*4+16]\n  cmp r0, 10\n  jl main\n  hlt\n")
	f.Add(".data shared 1024 shared @0x20000000\n  mov r1, [shared+8]\n  hlt\n")
	f.Add("a: b: nop\n  jmp a\n")
	f.Add("  mov r2, [r1-0x18]\n  push -5\n  ret\n")

	f.Fuzz(func(t *testing.T, src string) {
		p, err := isa.Parse("fuzz", src) // must not panic
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("parsed program fails Validate: %v", err)
		}
		src2, ok := reassemble(p)
		if !ok {
			return
		}
		p2, err := isa.Parse("fuzz-rt", src2)
		if err != nil {
			t.Fatalf("round-trip parse failed: %v\nreassembled:\n%s", err, src2)
		}
		if len(p2.Insns) != len(p.Insns) {
			t.Fatalf("round trip changed instruction count: %d -> %d\nreassembled:\n%s",
				len(p.Insns), len(p2.Insns), src2)
		}
		for i := range p.Insns {
			a, b := p.Insns[i], p2.Insns[i]
			if a.Addr != b.Addr || a.Op != b.Op {
				t.Fatalf("round trip changed insn %d: %v@0x%x -> %v@0x%x\nreassembled:\n%s",
					i, a.Op, a.Addr, b.Op, b.Addr, src2)
			}
		}
		if p2.Entry != p.Entry {
			t.Fatalf("round trip changed entry: 0x%x -> 0x%x", p.Entry, p2.Entry)
		}
		c1, err1 := cfg.Build(p)
		c2, err2 := cfg.Build(p2)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("round trip changed CFG buildability: %v vs %v", err1, err2)
		}
		if err1 == nil && c1.NumBlocks() != c2.NumBlocks() {
			t.Fatalf("round trip changed block count: %d -> %d\nreassembled:\n%s",
				c1.NumBlocks(), c2.NumBlocks(), src2)
		}
	})
}

func seedFiles(f *testing.F) []string {
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.s"))
	if err != nil {
		f.Fatal(err)
	}
	return paths
}

// reassemble renders a parsed program back to source the parser
// accepts: explicit data placement, synthesized labels at every branch
// target, and operands in canonical text form. It reports ok=false for
// the few shapes the text syntax cannot express (operand combinations
// only the programmatic Builder can emit).
func reassemble(p *isa.Program) (string, bool) {
	if len(p.Insns) == 0 {
		return "", false
	}
	var b strings.Builder
	fmt.Fprintf(&b, ".code 0x%x\n", p.Insns[0].Addr)
	for _, d := range p.Data {
		if d.Init != nil || strings.ContainsAny(d.Name, " \t") {
			return "", false // not expressible in .data syntax
		}
		fmt.Fprintf(&b, ".data %s %d", d.Name, d.Size)
		if d.Shared {
			b.WriteString(" shared")
		}
		fmt.Fprintf(&b, " @0x%x\n", d.Addr)
	}
	// Labels: one per branch target plus the entry point. Validate
	// guarantees both are instruction addresses.
	labelAt := map[uint64]string{p.Entry: fmt.Sprintf("L%x", p.Entry)}
	for _, in := range p.Insns {
		if t, ok := in.BranchTarget(); ok {
			labelAt[t] = fmt.Sprintf("L%x", t)
		}
	}
	fmt.Fprintf(&b, ".entry L%x\n", p.Entry)
	for _, in := range p.Insns {
		if l, ok := labelAt[in.Addr]; ok {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		line, ok := renderInsn(in, labelAt)
		if !ok {
			return "", false
		}
		fmt.Fprintf(&b, "  %s\n", line)
	}
	return b.String(), true
}

func renderInsn(in isa.Instruction, labelAt map[uint64]string) (string, bool) {
	if in.Op.IsBranch() && in.Op != isa.RET {
		t, ok := in.BranchTarget()
		if !ok {
			return "", false // indirect branch: not expressible
		}
		return fmt.Sprintf("%s %s", in.Op, labelAt[t]), true
	}
	switch {
	case in.Dst.Kind == isa.OpNone:
		return in.Op.String(), true
	case in.Src.Kind == isa.OpNone:
		o, ok := renderOperand(in.Dst)
		if !ok {
			return "", false
		}
		return fmt.Sprintf("%s %s", in.Op, o), true
	default:
		d, ok1 := renderOperand(in.Dst)
		s, ok2 := renderOperand(in.Src)
		if !ok1 || !ok2 {
			return "", false
		}
		return fmt.Sprintf("%s %s, %s", in.Op, d, s), true
	}
}

// renderOperand prints an operand so the parser reads back the exact
// Operand value: immediates and displacements in signed decimal (the
// disassembler's unsigned hex form is not re-parseable for negative
// values).
func renderOperand(o isa.Operand) (string, bool) {
	switch o.Kind {
	case isa.OpReg:
		return o.Base.String(), true
	case isa.OpImm:
		return fmt.Sprintf("%d", o.Disp), true
	case isa.OpMem:
		var parts []string
		if o.Base != isa.RegNone {
			parts = append(parts, o.Base.String())
		}
		if o.Index != isa.RegNone {
			scale := o.Scale
			if scale == 0 {
				scale = 1
			}
			parts = append(parts, fmt.Sprintf("%s*%d", o.Index, scale))
		}
		if o.Disp != 0 || len(parts) == 0 {
			parts = append(parts, fmt.Sprintf("%d", o.Disp))
		}
		s := parts[0]
		for _, p := range parts[1:] {
			if strings.HasPrefix(p, "-") {
				s += p
			} else {
				s += "+" + p
			}
		}
		return "[" + s + "]", true
	}
	return "", false
}
