package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	if got := R3.String(); got != "r3" {
		t.Errorf("R3.String() = %q, want r3", got)
	}
	if got := RegNone.String(); got != "none" {
		t.Errorf("RegNone.String() = %q, want none", got)
	}
	if !R15.Valid() || RegNone.Valid() || Reg(16).Valid() {
		t.Error("Reg.Valid misclassifies")
	}
}

func TestOpcodeString(t *testing.T) {
	cases := map[Opcode]string{
		NOP: "nop", MOV: "mov", CLFLUSH: "clflush", RDTSCP: "rdtscp",
		JAE: "jae", HLT: "hlt", MFENCE: "mfence",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", op, got, want)
		}
	}
	if got := Opcode(200).String(); !strings.HasPrefix(got, "op(") {
		t.Errorf("invalid opcode string = %q", got)
	}
}

func TestOpcodeClassification(t *testing.T) {
	branches := []Opcode{JMP, JE, JNE, JL, JLE, JG, JGE, JB, JAE, CALL, RET}
	for _, op := range branches {
		if !op.IsBranch() {
			t.Errorf("%s should be a branch", op)
		}
	}
	nonBranches := []Opcode{MOV, ADD, CLFLUSH, RDTSCP, NOP, HLT}
	for _, op := range nonBranches {
		if op.IsBranch() {
			t.Errorf("%s should not be a branch", op)
		}
	}
	conds := []Opcode{JE, JNE, JL, JLE, JG, JGE, JB, JAE}
	for _, op := range conds {
		if !op.IsCondBranch() {
			t.Errorf("%s should be conditional", op)
		}
	}
	if JMP.IsCondBranch() || CALL.IsCondBranch() || RET.IsCondBranch() {
		t.Error("JMP/CALL/RET are not conditional branches")
	}
	for _, op := range []Opcode{LFENCE, MFENCE, RDTSCP, HLT} {
		if !op.IsSerializing() {
			t.Errorf("%s should serialize", op)
		}
	}
	if MOV.IsSerializing() || JMP.IsSerializing() {
		t.Error("MOV/JMP must not serialize")
	}
}

func TestOperandConstructors(t *testing.T) {
	r := R(R5)
	if r.Kind != OpReg || r.Base != R5 {
		t.Errorf("R(R5) = %+v", r)
	}
	im := Imm(-7)
	if im.Kind != OpImm || im.Disp != -7 {
		t.Errorf("Imm(-7) = %+v", im)
	}
	m := Mem(R2, 16)
	if m.Kind != OpMem || m.Base != R2 || m.Index != RegNone || m.Disp != 16 || m.Scale != 1 {
		t.Errorf("Mem(R2,16) = %+v", m)
	}
	mi := MemIdx(R1, R2, 8, -4)
	if mi.Index != R2 || mi.Scale != 8 || mi.Disp != -4 {
		t.Errorf("MemIdx = %+v", mi)
	}
	if MemIdx(R1, R2, 0, 0).Scale != 1 {
		t.Error("scale 0 should default to 1")
	}
	ab := MemAbs(0x1000)
	if ab.Base != RegNone || ab.Disp != 0x1000 {
		t.Errorf("MemAbs = %+v", ab)
	}
	if !m.IsMem() || r.IsMem() || im.IsMem() {
		t.Error("IsMem misclassifies")
	}
}

func TestOperandString(t *testing.T) {
	cases := []struct {
		op   Operand
		want string
	}{
		{R(R0), "r0"},
		{Imm(255), "0xff"},
		{Mem(R1, 0), "[r1]"},
		{Mem(R1, 8), "[r1+0x8]"},
		{Mem(R1, -8), "[r1-0x8]"},
		{MemIdx(R1, R2, 4, 0), "[r1+r2*4]"},
		{MemAbs(0x2000), "[0x2000]"},
		{None(), ""},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.op, got, c.want)
		}
	}
}

func TestInstructionString(t *testing.T) {
	in := Instruction{Op: MOV, Dst: R(R0), Src: Mem(R1, 4)}
	if got := in.String(); got != "mov r0, [r1+0x4]" {
		t.Errorf("String() = %q", got)
	}
	in2 := Instruction{Op: RET}
	if got := in2.String(); got != "ret" {
		t.Errorf("String() = %q", got)
	}
	in3 := Instruction{Op: CLFLUSH, Dst: Mem(R3, 0)}
	if got := in3.String(); got != "clflush [r3]" {
		t.Errorf("String() = %q", got)
	}
}

func TestBranchTarget(t *testing.T) {
	j := Instruction{Op: JNE, Dst: Imm(0x500)}
	if tgt, ok := j.BranchTarget(); !ok || tgt != 0x500 {
		t.Errorf("BranchTarget = %x,%v", tgt, ok)
	}
	if _, ok := (Instruction{Op: RET}).BranchTarget(); ok {
		t.Error("RET has no static target")
	}
	if _, ok := (Instruction{Op: MOV, Dst: R(R0), Src: Imm(1)}).BranchTarget(); ok {
		t.Error("MOV has no branch target")
	}
	// Indirect jump: register destination has no static target.
	if _, ok := (Instruction{Op: JMP, Dst: R(R1)}).BranchTarget(); ok {
		t.Error("indirect JMP has no static target")
	}
}

func TestMemOperands(t *testing.T) {
	in := Instruction{Op: MOV, Dst: Mem(R1, 0), Src: R(R0)}
	if got := in.MemOperands(); len(got) != 1 || got[0].Base != R1 {
		t.Errorf("MemOperands = %+v", got)
	}
	in2 := Instruction{Op: MOV, Dst: R(R0), Src: R(R1)}
	if got := in2.MemOperands(); len(got) != 0 {
		t.Errorf("MemOperands = %+v, want empty", got)
	}
}

func TestNormalize(t *testing.T) {
	cases := []struct {
		in   Instruction
		want string
	}{
		{Instruction{Op: MOV, Dst: Mem(R5, -0x18), Src: R(R0)}, "mov mem, reg"},
		{Instruction{Op: MOV, Dst: R(R0), Src: Imm(42)}, "mov reg, imm"},
		{Instruction{Op: ADD, Dst: R(R1), Src: R(R2)}, "add reg, reg"},
		{Instruction{Op: CLFLUSH, Dst: Mem(R1, 0)}, "clflush mem"},
		{Instruction{Op: JNE, Dst: Imm(0x400)}, "jne imm"},
		{Instruction{Op: RET}, "ret"},
		{Instruction{Op: RDTSCP, Dst: R(R0)}, "rdtscp reg"},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%s) = %q, want %q", c.in, got, c.want)
		}
	}
}

// Normalization must erase exactly the details rules (1)-(3) say it
// erases: two instructions differing only in registers, immediates or
// addresses normalize identically.
func TestNormalizeErasesConcreteValues(t *testing.T) {
	f := func(rA, rB uint8, immA, immB int64, dispA, dispB int32) bool {
		a := Instruction{Op: MOV, Dst: R(Reg(rA % NumRegs)), Src: MemIdx(Reg(rB%NumRegs), Reg(rA%NumRegs), 4, int64(dispA))}
		b := Instruction{Op: MOV, Dst: R(Reg(rB % NumRegs)), Src: Mem(Reg(rA%NumRegs), int64(dispB))}
		if Normalize(a) != Normalize(b) {
			return false
		}
		c := Instruction{Op: ADD, Dst: R(R1), Src: Imm(immA)}
		d := Instruction{Op: ADD, Dst: R(R9), Src: Imm(immB)}
		return Normalize(c) == Normalize(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizeSeqAndKey(t *testing.T) {
	ins := []Instruction{
		{Op: MOV, Dst: R(R0), Src: Imm(1)},
		{Op: CLFLUSH, Dst: Mem(R1, 0)},
	}
	seq := NormalizeSeq(ins)
	if len(seq) != 2 || seq[0] != "mov reg, imm" || seq[1] != "clflush mem" {
		t.Errorf("NormalizeSeq = %v", seq)
	}
	if got := NormalizedKey(ins); got != "mov reg, imm; clflush mem" {
		t.Errorf("NormalizedKey = %q", got)
	}
}

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder("t", 0x1000)
	buf := b.Bytes("buf", 128, false)
	if buf != DefaultDataBase {
		t.Errorf("first data at %#x, want %#x", buf, uint64(DefaultDataBase))
	}
	b.Label("start").
		Mov(R(R0), Imm(0)).
		Label("loop").
		Mov(R(R1), Mem(R0, int64(buf))).
		Inc(R(R0)).
		Cmp(R(R0), Imm(16)).
		Jl("loop").
		Hlt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != 0x1000 {
		t.Errorf("entry = %#x", p.Entry)
	}
	if len(p.Insns) != 6 {
		t.Fatalf("got %d insns", len(p.Insns))
	}
	// The Jl must point back at the "loop" label.
	jl := p.Insns[4]
	tgt, ok := jl.BranchTarget()
	if !ok {
		t.Fatal("jl has no target")
	}
	if want := p.Labels["loop"]; tgt != want {
		t.Errorf("jl target %#x, want %#x", tgt, want)
	}
}

func TestBuilderForwardReference(t *testing.T) {
	b := NewBuilder("fwd", 0)
	b.Jmp("end").Nop().Label("end").Hlt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tgt, _ := p.Insns[0].BranchTarget()
	if want := p.Labels["end"]; tgt != want {
		t.Errorf("forward jump to %#x, want %#x", tgt, want)
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder("dup", 0)
	b.Label("a").Label("a").Hlt()
	if _, err := b.Build(); err == nil {
		t.Error("duplicate label must fail")
	}

	b2 := NewBuilder("undef", 0)
	b2.Jmp("nowhere").Hlt()
	if _, err := b2.Build(); err == nil {
		t.Error("undefined label must fail")
	}

	b3 := NewBuilder("empty", 0)
	if _, err := b3.Build(); err == nil {
		t.Error("empty program must fail")
	}

	b4 := NewBuilder("badentry", 0)
	b4.Hlt().Entry("missing")
	if _, err := b4.Build(); err == nil {
		t.Error("missing entry label must fail")
	}

	b5 := NewBuilder("dupdata", 0)
	b5.Bytes("d", 8, false)
	b5.Bytes("d", 8, false)
	b5.Hlt()
	if _, err := b5.Build(); err == nil {
		t.Error("duplicate data segment must fail")
	}

	b6 := NewBuilder("zerodata", 0)
	b6.Bytes("z", 0, false)
	b6.Hlt()
	if _, err := b6.Build(); err == nil {
		t.Error("zero-size data segment must fail")
	}
}

func TestBuilderAttackMarking(t *testing.T) {
	b := NewBuilder("mark", 0)
	b.Nop().
		BeginAttack().
		Clflush(Mem(R0, 0)).
		Rdtscp(R1).
		EndAttack().
		Hlt()
	p := b.MustBuild()
	marked := p.AttackAddrs()
	if len(marked) != 2 {
		t.Fatalf("marked %d insns, want 2", len(marked))
	}
	if in, _ := p.At(marked[0]); in.Op != CLFLUSH {
		t.Errorf("first marked = %s", in.Op)
	}
}

func TestBuilderDataSegments(t *testing.T) {
	b := NewBuilder("data", 0)
	a1 := b.Bytes("a", 100, true)
	a2 := b.DataInit("b", 8, []byte{1, 2, 3}, false)
	b.Hlt()
	p := b.MustBuild()
	if a2 <= a1 {
		t.Error("segments must be laid out upward")
	}
	if a2%64 != 0 {
		t.Errorf("segment b at %#x not line-aligned", a2)
	}
	seg, ok := p.Segment("a")
	if !ok || !seg.Shared || seg.Size != 100 {
		t.Errorf("segment a = %+v", seg)
	}
	if !seg.Contains(a1) || !seg.Contains(a1+99) || seg.Contains(a1+100) {
		t.Error("Contains misbehaves at boundaries")
	}
	segB, _ := p.Segment("b")
	if len(segB.Init) != 3 {
		t.Errorf("segment b init = %v", segB.Init)
	}
	if _, ok := p.Segment("zzz"); ok {
		t.Error("missing segment must not be found")
	}
}

func TestBuilderSetDataBase(t *testing.T) {
	b := NewBuilder("dbase", 0)
	b.SetDataBase(0x5000)
	if addr := b.Bytes("x", 8, false); addr != 0x5000 {
		t.Errorf("data at %#x, want 0x5000", addr)
	}
	b.Hlt()
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
	// SetDataBase after allocation must fail.
	b2 := NewBuilder("dbase2", 0)
	b2.Bytes("x", 8, false)
	b2.SetDataBase(0x9000)
	b2.Hlt()
	if _, err := b2.Build(); err == nil {
		t.Error("late SetDataBase must fail")
	}
}

func TestProgramValidate(t *testing.T) {
	// Overlapping instructions.
	p := &Program{
		Name:  "bad",
		Entry: 0,
		Insns: []Instruction{
			{Addr: 0, Size: 4, Op: NOP},
			{Addr: 2, Size: 4, Op: HLT},
		},
	}
	if err := p.Validate(); err == nil {
		t.Error("overlap must fail validation")
	}
	// Unsorted.
	p2 := &Program{
		Name:  "unsorted",
		Entry: 4,
		Insns: []Instruction{
			{Addr: 4, Size: 4, Op: NOP},
			{Addr: 0, Size: 4, Op: HLT},
		},
	}
	if err := p2.Validate(); err == nil {
		t.Error("unsorted must fail validation")
	}
	// Branch to nowhere.
	p3 := &Program{
		Name:  "badtarget",
		Entry: 0,
		Insns: []Instruction{
			{Addr: 0, Size: 4, Op: JMP, Dst: Imm(0x999)},
		},
	}
	if err := p3.Validate(); err == nil {
		t.Error("dangling branch target must fail validation")
	}
	// Bad scale.
	p4 := &Program{
		Name:  "badscale",
		Entry: 0,
		Insns: []Instruction{
			{Addr: 0, Size: 4, Op: MOV, Dst: R(R0), Src: Operand{Kind: OpMem, Base: R1, Index: R2, Scale: 3}},
		},
	}
	if err := p4.Validate(); err == nil {
		t.Error("bad scale must fail validation")
	}
	// Overlapping data segments.
	p5 := &Program{
		Name:  "baddata",
		Entry: 0,
		Insns: []Instruction{{Addr: 0, Size: 4, Op: HLT}},
		Data: []DataSegment{
			{Name: "a", Addr: 100, Size: 64},
			{Name: "b", Addr: 130, Size: 64},
		},
	}
	if err := p5.Validate(); err == nil {
		t.Error("overlapping data must fail validation")
	}
}

func TestProgramLookups(t *testing.T) {
	b := NewBuilder("look", 0x100)
	b.Nop().Nop().Hlt()
	p := b.MustBuild()
	if in, ok := p.At(0x104); !ok || in.Op != NOP {
		t.Error("At(0x104) failed")
	}
	if _, ok := p.At(0x105); ok {
		t.Error("At(mid-instruction) must fail")
	}
	if i, ok := p.IndexOf(0x108); !ok || i != 2 {
		t.Errorf("IndexOf = %d,%v", i, ok)
	}
	if p.MinAddr() != 0x100 || p.MaxAddr() != 0x10c {
		t.Errorf("range = [%#x,%#x)", p.MinAddr(), p.MaxAddr())
	}
	if a, ok := p.Label("nope"); ok || a != 0 {
		t.Error("missing label lookup")
	}
}

func TestDisassemble(t *testing.T) {
	b := NewBuilder("dis", 0)
	b.Label("entry").BeginAttack().Clflush(Mem(R0, 0)).EndAttack().Hlt()
	p := b.MustBuild()
	out := p.Disassemble()
	for _, want := range []string{"entry:", "clflush [r0]", "hlt", "program dis"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q in:\n%s", want, out)
		}
	}
	// Attack-marked line carries the '*' marker.
	if !strings.Contains(out, "* clflush") {
		t.Errorf("attack mark missing:\n%s", out)
	}
}

func TestEmptyProgramRange(t *testing.T) {
	var p Program
	if p.MinAddr() != 0 || p.MaxAddr() != 0 {
		t.Error("empty program range should be 0,0")
	}
}

// Exercise the full builder instruction surface in-package (the attack
// corpus exercises it cross-package, which per-package coverage does not
// count).
func TestBuilderFullSurface(t *testing.T) {
	b := NewBuilder("surface", 0x100)
	if b.Name() != "surface" || b.PC() != 0x100 {
		t.Errorf("Name/PC = %q/%#x", b.Name(), b.PC())
	}
	b.Label("top").
		Add(R(R0), Imm(1)).
		Sub(R(R0), Imm(1)).
		Dec(R(R0)).
		Mul(R(R0), Imm(2)).
		Xor(R(R0), R(R1)).
		And(R(R0), Imm(0xff)).
		Or(R(R0), Imm(1)).
		Shl(R(R0), Imm(2)).
		Shr(R(R0), Imm(1)).
		Test(R(R0), R(R0)).
		Je("top").
		Jle("top").
		Jg("top").
		Jge("top").
		Jb("top").
		Jae("top").
		Jne("top").
		Jl("top").
		Push(R(R0)).
		Pop(R(R1)).
		Lfence().
		Mfence().
		Call("fn").
		Hlt().
		Label("fn").
		Ret()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if b.Err() != nil {
		t.Fatal(b.Err())
	}
	// Every opcode of the surface appears.
	seen := map[Opcode]bool{}
	for _, in := range p.Insns {
		seen[in.Op] = true
	}
	for _, op := range []Opcode{ADD, SUB, DEC, MUL, XOR, AND, OR, SHL, SHR,
		TEST, JE, JLE, JG, JGE, JB, JAE, JNE, JL, PUSH, POP, LFENCE, MFENCE, CALL, RET, HLT} {
		if !seen[op] {
			t.Errorf("opcode %s missing from surface program", op)
		}
	}
}

func TestDataAtOverlapRejected(t *testing.T) {
	b := NewBuilder("overlap", 0)
	b.DataAt("a", 0x1000, 64, nil, false)
	b.DataAt("b", 0x1020, 64, nil, false) // overlaps a
	b.Hlt()
	if _, err := b.Build(); err == nil {
		t.Error("overlapping DataAt segments must fail validation")
	}
	b2 := NewBuilder("dupat", 0)
	b2.DataAt("x", 0x1000, 64, nil, false)
	b2.DataAt("x", 0x2000, 64, nil, false)
	b2.Hlt()
	if _, err := b2.Build(); err == nil {
		t.Error("duplicate DataAt names must fail")
	}
}
