package isa

import "strings"

// Normalization implements the three rewrite rules of Section III-B1 of
// the paper (following SPAIN's instruction normalization): immediates
// become "imm", memory references become "mem" and registers become
// "reg". The normalized text strips the syntactic differences a compiler
// (or a mutation/obfuscation pass) introduces, leaving only the operation
// shape that the Levenshtein distance compares.

// NormalizeOperand returns the normalized token for one operand.
func NormalizeOperand(o Operand) string {
	switch o.Kind {
	case OpReg:
		return "reg"
	case OpImm:
		return "imm"
	case OpMem:
		return "mem"
	}
	return ""
}

// Normalize returns the normalized form of a single instruction, e.g.
// "mov mem, reg" for `mov -0x18(rbp), rax`.
func Normalize(in Instruction) string {
	// Branch targets are immediates syntactically but their concrete
	// values are layout noise; they normalize to "imm" like any other
	// immediate, which is exactly what the paper's rule (1) prescribes.
	d := NormalizeOperand(in.Dst)
	s := NormalizeOperand(in.Src)
	switch {
	case d == "":
		return in.Op.String()
	case s == "":
		return in.Op.String() + " " + d
	default:
		return in.Op.String() + " " + d + ", " + s
	}
}

// NormalizeSeq normalizes every instruction of a sequence in order.
func NormalizeSeq(ins []Instruction) []string {
	out := make([]string, len(ins))
	for i, in := range ins {
		out[i] = Normalize(in)
	}
	return out
}

// NormalizedKey joins a normalized sequence into a single comparable
// string. Useful as a map key when deduplicating basic-block bodies.
func NormalizedKey(ins []Instruction) string {
	return strings.Join(NormalizeSeq(ins), "; ")
}
