package isa

import (
	"fmt"
	"sort"
	"strings"
)

// DataSegment describes a region of initialized or reserved memory that a
// program expects to exist before execution starts.
type DataSegment struct {
	Name string
	Addr uint64
	Size uint64
	// Init holds initial byte values; when shorter than Size the rest is
	// zero-filled. May be nil for purely reserved (BSS-like) segments.
	Init []byte
	// Shared marks the segment as part of the shared-memory region
	// (library pages shared between attacker and victim), which
	// Flush+Reload-family attacks rely on.
	Shared bool
}

// End returns the first address past the segment.
func (d DataSegment) End() uint64 { return d.Addr + d.Size }

// Contains reports whether addr falls inside the segment.
func (d DataSegment) Contains(addr uint64) bool {
	return addr >= d.Addr && addr < d.End()
}

// Program is an assembled unit: a sorted instruction stream, its entry
// point, data segments and symbolic labels. It is the artefact the whole
// pipeline consumes — the stand-in for an ELF binary in the paper.
type Program struct {
	Name   string
	Entry  uint64
	Insns  []Instruction // sorted by Addr, non-overlapping
	Data   []DataSegment
	Labels map[string]uint64

	index map[uint64]int // Addr -> position in Insns
}

// buildIndex (re)creates the address index. Called by the assembler and
// by Validate; callers constructing Program values by hand should call
// Validate before use.
func (p *Program) buildIndex() {
	p.index = make(map[uint64]int, len(p.Insns))
	for i, in := range p.Insns {
		p.index[in.Addr] = i
	}
}

// At returns the instruction at the exact address addr.
func (p *Program) At(addr uint64) (Instruction, bool) {
	if p.index == nil {
		p.buildIndex()
	}
	i, ok := p.index[addr]
	if !ok {
		return Instruction{}, false
	}
	return p.Insns[i], true
}

// IndexOf returns the position in Insns of the instruction at addr.
func (p *Program) IndexOf(addr uint64) (int, bool) {
	if p.index == nil {
		p.buildIndex()
	}
	i, ok := p.index[addr]
	return i, ok
}

// Label resolves a symbolic label to its address.
func (p *Program) Label(name string) (uint64, bool) {
	a, ok := p.Labels[name]
	return a, ok
}

// MinAddr and MaxAddr return the address range covered by code.
func (p *Program) MinAddr() uint64 {
	if len(p.Insns) == 0 {
		return 0
	}
	return p.Insns[0].Addr
}

// MaxAddr returns the first address past the last instruction.
func (p *Program) MaxAddr() uint64 {
	if len(p.Insns) == 0 {
		return 0
	}
	last := p.Insns[len(p.Insns)-1]
	return last.Next()
}

// Segment returns the data segment with the given name.
func (p *Program) Segment(name string) (DataSegment, bool) {
	for _, d := range p.Data {
		if d.Name == name {
			return d, true
		}
	}
	return DataSegment{}, false
}

// AttackAddrs returns the addresses of instructions carrying the
// ground-truth attack mark, in address order.
func (p *Program) AttackAddrs() []uint64 {
	var out []uint64
	for _, in := range p.Insns {
		if in.Attack {
			out = append(out, in.Addr)
		}
	}
	return out
}

// Validate checks structural invariants: sortedness, non-overlap, a
// resolvable entry point, in-range branch targets and well-formed
// operands. A Program that passes Validate is safe to execute.
func (p *Program) Validate() error {
	if len(p.Insns) == 0 {
		return fmt.Errorf("program %q: no instructions", p.Name)
	}
	if !sort.SliceIsSorted(p.Insns, func(i, j int) bool {
		return p.Insns[i].Addr < p.Insns[j].Addr
	}) {
		return fmt.Errorf("program %q: instructions not sorted by address", p.Name)
	}
	for i := 1; i < len(p.Insns); i++ {
		prev, cur := p.Insns[i-1], p.Insns[i]
		if prev.Next() > cur.Addr {
			return fmt.Errorf("program %q: instructions at 0x%x and 0x%x overlap",
				p.Name, prev.Addr, cur.Addr)
		}
	}
	p.buildIndex()
	if _, ok := p.index[p.Entry]; !ok {
		return fmt.Errorf("program %q: entry 0x%x is not an instruction", p.Name, p.Entry)
	}
	for _, in := range p.Insns {
		if !in.Op.Valid() {
			return fmt.Errorf("program %q: invalid opcode at 0x%x", p.Name, in.Addr)
		}
		if in.Size == 0 {
			return fmt.Errorf("program %q: zero-size instruction at 0x%x", p.Name, in.Addr)
		}
		if t, ok := in.BranchTarget(); ok {
			if _, exists := p.index[t]; !exists {
				return fmt.Errorf("program %q: %s at 0x%x targets 0x%x which is not an instruction",
					p.Name, in.Op, in.Addr, t)
			}
		}
		for _, op := range [...]Operand{in.Dst, in.Src} {
			switch op.Kind {
			case OpReg:
				if !op.Base.Valid() {
					return fmt.Errorf("program %q: bad register operand at 0x%x", p.Name, in.Addr)
				}
			case OpMem:
				if op.Base != RegNone && !op.Base.Valid() {
					return fmt.Errorf("program %q: bad base register at 0x%x", p.Name, in.Addr)
				}
				if op.Index != RegNone && !op.Index.Valid() {
					return fmt.Errorf("program %q: bad index register at 0x%x", p.Name, in.Addr)
				}
				switch op.Scale {
				case 0, 1, 2, 4, 8:
				default:
					return fmt.Errorf("program %q: bad scale %d at 0x%x", p.Name, op.Scale, in.Addr)
				}
			}
		}
	}
	for i, d := range p.Data {
		if d.Size == 0 {
			return fmt.Errorf("program %q: data segment %q has zero size", p.Name, d.Name)
		}
		if uint64(len(d.Init)) > d.Size {
			return fmt.Errorf("program %q: data segment %q init larger than size", p.Name, d.Name)
		}
		for j := range p.Data[:i] {
			o := p.Data[j]
			if d.Addr < o.End() && o.Addr < d.End() {
				return fmt.Errorf("program %q: data segments %q and %q overlap", p.Name, o.Name, d.Name)
			}
		}
	}
	return nil
}

// Disassemble renders the whole program as readable assembly, one
// instruction per line with addresses, for debugging and documentation.
func (p *Program) Disassemble() string {
	addrLabel := make(map[uint64]string, len(p.Labels))
	for name, a := range p.Labels {
		if prev, ok := addrLabel[a]; !ok || name < prev {
			addrLabel[a] = name
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "; program %s  entry=0x%x  %d insns\n", p.Name, p.Entry, len(p.Insns))
	for _, in := range p.Insns {
		if l, ok := addrLabel[in.Addr]; ok {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		mark := " "
		if in.Attack {
			mark = "*"
		}
		fmt.Fprintf(&b, "  0x%06x%s %s\n", in.Addr, mark, in.String())
	}
	return b.String()
}
