package isa

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestParseMinimal(t *testing.T) {
	p, err := Parse("min", `
		; simplest program
		mov r0, 42
		hlt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Insns) != 2 {
		t.Fatalf("insns = %d", len(p.Insns))
	}
	if p.Insns[0].Op != MOV || p.Insns[0].Src.Disp != 42 {
		t.Errorf("insn 0 = %s", p.Insns[0])
	}
	if p.Entry != 0x40_0000 {
		t.Errorf("default code base = %#x", p.Entry)
	}
}

func TestParseDirectivesAndSymbols(t *testing.T) {
	p, err := Parse("full", `
		.code 0x1000
		.database 0x20000
		.entry main
		.data buf 128
		.data tab 256 shared @0x30000000

		helper:
		  ret

		main:
		  mov r1, $buf
		  mov r2, [tab]          ; absolute segment reference
		  mov r3, [r1+8]
		  lea r4, [r1+r2*4+16]
		  mov [buf+64], r3
		  clflush [tab+0x40]
		  rdtscp r5
		  cmp r5, 0x10
		  jae main
		  call helper
		  hlt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != p.Labels["main"] {
		t.Errorf("entry = %#x, main = %#x", p.Entry, p.Labels["main"])
	}
	buf, ok := p.Segment("buf")
	if !ok || buf.Addr != 0x20000 {
		t.Errorf("buf = %+v", buf)
	}
	tab, ok := p.Segment("tab")
	if !ok || tab.Addr != 0x30000000 || !tab.Shared {
		t.Errorf("tab = %+v", tab)
	}
	// mov r1, $buf resolves to an immediate with buf's address.
	in, _ := p.At(p.Labels["main"])
	if in.Src.Kind != OpImm || uint64(in.Src.Disp) != buf.Addr {
		t.Errorf("$buf operand = %+v", in.Src)
	}
}

func TestParsedProgramExecutes(t *testing.T) {
	p, err := Parse("sum", `
		.data arr 64
		  mov r0, 0        ; sum
		  mov r1, 0        ; i
		  mov r2, $arr
		loop:
		  mov [r2+r1*8], r1
		  add r0, [r2+r1*8]
		  inc r1
		  cmp r1, 8
		  jl loop
		  hlt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// sum 0..7 = 28 — verified through the exec package in the facade
	// test; here just check shape.
	if len(p.Insns) != 9 {
		t.Errorf("insns = %d", len(p.Insns))
	}
}

func TestParseOperandForms(t *testing.T) {
	p, err := Parse("ops", `
		  mov r0, -5
		  mov r1, 0xff
		  push r0
		  pop r2
		  inc r2
		  dec r2
		  test r2, r2
		  mov r3, [r1-8]
		  mov r4, [r1+r2]
		  lfence
		  mfence
		  nop
		  hlt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Insns[0].Src.Disp != -5 {
		t.Errorf("negative imm = %d", p.Insns[0].Src.Disp)
	}
	if p.Insns[7].Src.Disp != -8 {
		t.Errorf("negative disp = %d", p.Insns[7].Src.Disp)
	}
	// [r1+r2] — second register becomes index with scale 1.
	m := p.Insns[8].Src
	if m.Base != R1 || m.Index != R2 || m.Scale != 1 {
		t.Errorf("two-reg mem = %+v", m)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"bogus r0, 1",        // unknown mnemonic
		"mov r0",             // missing operand
		"mov r0, r1, r2",     // too many operands
		"inc r0, r1",         // too many for unary
		"rdtscp 5",           // rdtscp wants a register
		"lea r0, r1",         // lea wants memory
		"jmp",                // branch without label
		"jmp a b",            // branch with junk
		"mov r0, [r1+r2+r3]", // three registers
		"mov r0, [r1*3]",     // bad scale
		"mov r0, [qq]",       // unknown symbol
		"mov r0, $zz",        // unknown $symbol
		"mov r0, [r1",        // unterminated
		"nop r1",             // operands on nullary
		".data x",            // bad directive arity
		".data x 0x1 @zz",    // bad address
		".bogus 1",           // unknown directive
		".code zz",           // bad code base
		"mov r0, [ ]",        // empty mem
		"mov r99, 1",         // bad register is parsed as symbol -> error
	}
	for _, src := range cases {
		if _, err := Parse("bad", src+"\nhlt\n"); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
}

func TestParseUndefinedLabel(t *testing.T) {
	if _, err := Parse("lbl", "jmp nowhere\nhlt\n"); err == nil {
		t.Error("undefined label must fail at Build")
	}
}

// Round trip: disassembling a parsed program and eyeballing key lines.
func TestParseDisassembleConsistency(t *testing.T) {
	p, err := Parse("rt", `
		start:
		  mov r0, 1
		  clflush [r0]
		  jne start
		  hlt
	`)
	if err != nil {
		t.Fatal(err)
	}
	dis := p.Disassemble()
	for _, want := range []string{"mov r0, 0x1", "clflush [r0]", "jne", "hlt"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestParseMultipleLabelsPerLine(t *testing.T) {
	p, err := Parse("ml", `
		a: b: nop
		jmp b
		hlt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Labels["a"] != p.Labels["b"] {
		t.Error("stacked labels must share an address")
	}
}

// TestParseLimits: hostile input hits a typed *LimitError instead of
// ballooning memory; input at the limit still parses.
func TestParseLimits(t *testing.T) {
	limitErr := func(t *testing.T, src, what string) {
		t.Helper()
		_, err := Parse("hostile", src)
		var le *LimitError
		if !errors.As(err, &le) {
			t.Fatalf("err = %v, want *LimitError", err)
		}
		if le.What != what {
			t.Errorf("What = %q, want %q", le.What, what)
		}
		if !strings.Contains(le.Error(), what) {
			t.Errorf("Error() = %q does not name the resource", le.Error())
		}
	}

	t.Run("instructions", func(t *testing.T) {
		limitErr(t, strings.Repeat("nop\n", MaxParseInstructions+1), "instructions")
	})
	t.Run("labels", func(t *testing.T) {
		var b strings.Builder
		for i := 0; i <= MaxParseLabels; i++ {
			fmt.Fprintf(&b, "l%d:\n", i)
		}
		b.WriteString("hlt\n")
		limitErr(t, b.String(), "labels")
	})
	t.Run("data-segments", func(t *testing.T) {
		var b strings.Builder
		for i := 0; i <= MaxParseDataSegments; i++ {
			fmt.Fprintf(&b, ".data d%d 8\n", i)
		}
		b.WriteString("hlt\n")
		limitErr(t, b.String(), "data segments")
	})
	t.Run("at-the-limit-parses", func(t *testing.T) {
		src := strings.Repeat("nop\n", MaxParseInstructions-1) + "hlt\n"
		if _, err := Parse("big", src); err != nil {
			t.Fatalf("program at the limit rejected: %v", err)
		}
	})
}
