package isa_test

import (
	"fmt"

	"repro/internal/isa"
)

// Building a program with the fluent builder API.
func ExampleBuilder() {
	b := isa.NewBuilder("demo", 0x1000)
	buf := b.Bytes("buf", 64, false)
	b.Mov(isa.R(isa.R0), isa.Imm(int64(buf))).
		Clflush(isa.Mem(isa.R0, 0)).
		Rdtscp(isa.R1).
		Mov(isa.R(isa.R2), isa.Mem(isa.R0, 0)).
		Rdtscp(isa.R3).
		Hlt()
	p := b.MustBuild()
	fmt.Println(len(p.Insns), "instructions at", fmt.Sprintf("%#x", p.Entry))
	// Output: 6 instructions at 0x1000
}

// Assembling the same program from text.
func ExampleParse() {
	p, err := isa.Parse("demo", `
		.data buf 64
		  mov r0, $buf
		  clflush [r0]
		  rdtscp r1
		  mov r2, [r0]
		  rdtscp r3
		  hlt
	`)
	if err != nil {
		panic(err)
	}
	fmt.Println(p.Insns[1].String())
	// Output: clflush [r0]
}

// The normalization rules the similarity metric relies on.
func ExampleNormalize() {
	in := isa.Instruction{
		Op:  isa.MOV,
		Dst: isa.Mem(isa.R5, -0x18),
		Src: isa.R(isa.R0),
	}
	fmt.Println(isa.Normalize(in))
	// Output: mov mem, reg
}
