// Package isa defines the small x86-flavoured instruction set used by the
// SCAGuard reproduction. Attack proof-of-concepts, victim routines and
// benign programs are all written in this ISA, assembled into Program
// values, and executed by internal/exec on top of the cache simulator.
//
// The ISA deliberately mirrors the subset of x86 that matters to cache
// side-channel analysis: ordinary ALU traffic, loads/stores with
// base+index*scale+disp addressing, conditional branches, CLFLUSH, RDTSCP
// and serializing fences. Every instruction carries a virtual address so
// that control-flow recovery and HPC attribution work exactly as they do
// on real binaries.
package isa

import "fmt"

// Reg identifies a general-purpose register. The machine provides sixteen
// of them (R0..R15); RegNone marks an absent register field in an operand.
type Reg uint8

// General purpose registers. By convention in the builders, R0 is used as
// the primary accumulator, R14 as the stack pointer and R15 as a scratch
// register, but the ISA itself attaches no meaning to any of them.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	// RegNone marks "no register" (e.g. a memory operand with no index).
	RegNone Reg = 0xFF
)

// NumRegs is the size of the architectural register file.
const NumRegs = 16

// String returns the conventional assembly name of the register.
func (r Reg) String() string {
	if r == RegNone {
		return "none"
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// Valid reports whether r names an architectural register.
func (r Reg) Valid() bool { return r < NumRegs }

// Opcode enumerates every operation the machine can execute.
type Opcode uint8

// The instruction set. MOV covers register moves, loads and stores
// depending on operand kinds; LEA computes an effective address without
// touching memory; CLFLUSH evicts a line from the whole hierarchy;
// RDTSCP reads the virtual cycle counter and serializes like the real
// instruction; LFENCE/MFENCE serialize speculation.
const (
	NOP Opcode = iota
	MOV
	LEA
	ADD
	SUB
	INC
	DEC
	MUL
	XOR
	AND
	OR
	SHL
	SHR
	CMP
	TEST
	JMP
	JE
	JNE
	JL
	JLE
	JG
	JGE
	JB  // unsigned below
	JAE // unsigned above-or-equal
	CALL
	RET
	PUSH
	POP
	CLFLUSH
	RDTSCP
	LFENCE
	MFENCE
	HLT
	numOpcodes
)

var opcodeNames = [numOpcodes]string{
	NOP:     "nop",
	MOV:     "mov",
	LEA:     "lea",
	ADD:     "add",
	SUB:     "sub",
	INC:     "inc",
	DEC:     "dec",
	MUL:     "mul",
	XOR:     "xor",
	AND:     "and",
	OR:      "or",
	SHL:     "shl",
	SHR:     "shr",
	CMP:     "cmp",
	TEST:    "test",
	JMP:     "jmp",
	JE:      "je",
	JNE:     "jne",
	JL:      "jl",
	JLE:     "jle",
	JG:      "jg",
	JGE:     "jge",
	JB:      "jb",
	JAE:     "jae",
	CALL:    "call",
	RET:     "ret",
	PUSH:    "push",
	POP:     "pop",
	CLFLUSH: "clflush",
	RDTSCP:  "rdtscp",
	LFENCE:  "lfence",
	MFENCE:  "mfence",
	HLT:     "hlt",
}

// String returns the mnemonic of the opcode.
func (op Opcode) String() string {
	if int(op) < len(opcodeNames) {
		return opcodeNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Valid reports whether op is a defined opcode.
func (op Opcode) Valid() bool { return op < numOpcodes }

// IsBranch reports whether op transfers control (conditionally or not).
func (op Opcode) IsBranch() bool {
	switch op {
	case JMP, JE, JNE, JL, JLE, JG, JGE, JB, JAE, CALL, RET:
		return true
	}
	return false
}

// IsCondBranch reports whether op is a conditional branch.
func (op Opcode) IsCondBranch() bool {
	switch op {
	case JE, JNE, JL, JLE, JG, JGE, JB, JAE:
		return true
	}
	return false
}

// IsSerializing reports whether op drains the speculative window, i.e.
// no transient execution can pass it.
func (op Opcode) IsSerializing() bool {
	switch op {
	case LFENCE, MFENCE, RDTSCP, HLT:
		return true
	}
	return false
}

// OperandKind distinguishes the three operand shapes of the ISA.
type OperandKind uint8

// Operand kinds.
const (
	OpNone OperandKind = iota
	OpReg
	OpImm
	OpMem
)

// String names the operand kind.
func (k OperandKind) String() string {
	switch k {
	case OpNone:
		return "none"
	case OpReg:
		return "reg"
	case OpImm:
		return "imm"
	case OpMem:
		return "mem"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Operand is a register, an immediate, or a memory reference of the form
// [Base + Index*Scale + Disp]. For OpImm the immediate lives in Disp.
type Operand struct {
	Kind  OperandKind
	Base  Reg   // OpReg: the register; OpMem: base register (RegNone ok)
	Index Reg   // OpMem only; RegNone if absent
	Scale uint8 // OpMem only; one of 1,2,4,8 (0 treated as 1)
	Disp  int64 // OpImm: the immediate; OpMem: displacement
}

// None is the absent operand.
func None() Operand { return Operand{Kind: OpNone} }

// R wraps a register into an operand.
func R(r Reg) Operand { return Operand{Kind: OpReg, Base: r} }

// Imm wraps an immediate into an operand.
func Imm(v int64) Operand { return Operand{Kind: OpImm, Disp: v} }

// Mem builds a memory operand [base+disp].
func Mem(base Reg, disp int64) Operand {
	return Operand{Kind: OpMem, Base: base, Index: RegNone, Scale: 1, Disp: disp}
}

// MemIdx builds a memory operand [base + index*scale + disp].
func MemIdx(base, index Reg, scale uint8, disp int64) Operand {
	if scale == 0 {
		scale = 1
	}
	return Operand{Kind: OpMem, Base: base, Index: index, Scale: scale, Disp: disp}
}

// MemAbs builds an absolute memory operand [disp].
func MemAbs(addr uint64) Operand {
	return Operand{Kind: OpMem, Base: RegNone, Index: RegNone, Scale: 1, Disp: int64(addr)}
}

// IsMem reports whether the operand references memory.
func (o Operand) IsMem() bool { return o.Kind == OpMem }

// String renders the operand in assembly syntax.
func (o Operand) String() string {
	switch o.Kind {
	case OpNone:
		return ""
	case OpReg:
		return o.Base.String()
	case OpImm:
		return fmt.Sprintf("0x%x", uint64(o.Disp))
	case OpMem:
		s := "["
		sep := ""
		if o.Base != RegNone {
			s += o.Base.String()
			sep = "+"
		}
		if o.Index != RegNone {
			s += fmt.Sprintf("%s%s*%d", sep, o.Index, o.Scale)
			sep = "+"
		}
		if o.Disp != 0 || sep == "" {
			if o.Disp < 0 {
				s += fmt.Sprintf("-0x%x", uint64(-o.Disp))
			} else {
				s += fmt.Sprintf("%s0x%x", sep, uint64(o.Disp))
			}
		}
		return s + "]"
	}
	return "?"
}

// Instruction is one decoded instruction at a fixed virtual address.
type Instruction struct {
	Addr uint64  // virtual address of the first byte
	Size uint8   // encoded size in bytes (used to compute fallthrough)
	Op   Opcode  // operation
	Dst  Operand // destination (or only) operand
	Src  Operand // source operand
	// Attack marks builder-provided ground truth: the instruction belongs
	// to a manually identified attack-relevant region. Used only for
	// evaluation (Table IV), never by the detection pipeline itself.
	Attack bool
}

// Next returns the address of the instruction that follows in memory.
func (in Instruction) Next() uint64 { return in.Addr + uint64(in.Size) }

// BranchTarget returns the static branch target and true when the
// instruction is a direct branch/call with an immediate target.
func (in Instruction) BranchTarget() (uint64, bool) {
	if !in.Op.IsBranch() || in.Op == RET {
		return 0, false
	}
	if in.Dst.Kind == OpImm {
		return uint64(in.Dst.Disp), true
	}
	return 0, false
}

// MemOperands returns the memory operands of the instruction, if any.
func (in Instruction) MemOperands() []Operand {
	var out []Operand
	if in.Dst.IsMem() {
		out = append(out, in.Dst)
	}
	if in.Src.IsMem() {
		out = append(out, in.Src)
	}
	return out
}

// String renders the instruction in assembly syntax (without address).
func (in Instruction) String() string {
	switch {
	case in.Dst.Kind == OpNone:
		return in.Op.String()
	case in.Src.Kind == OpNone:
		return fmt.Sprintf("%s %s", in.Op, in.Dst)
	default:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Dst, in.Src)
	}
}
