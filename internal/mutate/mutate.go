// Package mutate implements the code-mutation and polymorphic
// obfuscation passes used to expand the corpus (Table II: 400 mutated
// variants per attack type; evaluation E4: obfuscated variants with
// ~70% more basic blocks).
//
// All transformations are semantics-preserving for the programs in this
// repository:
//
//   - register renaming permutes R0..R13 consistently (R14 is the stack
//     pointer, R15 is reserved as the junk-code scratch register);
//   - instruction substitution swaps equivalent encodings (inc/add 1,
//     mov 0/xor, shl 1/add self, test self/cmp 0);
//   - NOP insertion pads blocks without touching flags;
//   - junk-block insertion (obfuscation) adds opaque always-taken
//     branches over dead payloads, splitting basic blocks; insertion
//     points are chosen so inserted flag writes never clobber live
//     flags.
//
// Because instructions move, the mutated program is reassembled: every
// instruction gets a fresh address and direct branch targets, labels and
// the entry point are remapped. The corpus contains no indirect jumps to
// code constants, so the remap is complete.
package mutate

import (
	"fmt"
	"math/rand"

	"repro/internal/isa"
)

// Config selects mutation intensity.
type Config struct {
	Seed int64
	// RegRename permutes general-purpose registers.
	RegRename bool
	// SubstituteRate is the probability an eligible instruction is
	// replaced by an equivalent form.
	SubstituteRate float64
	// NopRate is the probability of inserting a NOP before an
	// instruction.
	NopRate float64
	// JunkRate is the probability of inserting an opaque junk block
	// before an instruction (at flag-safe positions only).
	JunkRate float64
}

// LightConfig returns the mutation used to build the 400-variant corpus:
// diversifying but conservative, keeping program size similar.
func LightConfig(seed int64) Config {
	return Config{Seed: seed, RegRename: true, SubstituteRate: 0.35, NopRate: 0.08}
}

// ObfuscationConfig returns the polymorphic configuration of evaluation
// E4: heavy junk-code insertion targeting roughly 70% more basic blocks.
func ObfuscationConfig(seed int64) Config {
	return Config{Seed: seed, RegRename: true, SubstituteRate: 0.3, NopRate: 0.25, JunkRate: 0.16}
}

// junkReg is reserved for dead junk computations; no corpus program uses
// it for real work.
const junkReg = isa.R15

// Mutate applies the configured transformation and returns a new
// program named "<name>#m<seed>".
func Mutate(p *isa.Program, cfg Config) (*isa.Program, error) {
	if p == nil {
		return nil, fmt.Errorf("mutate: nil program")
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("mutate: %w", err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Pass 1: per-instruction rewrite (rename + substitution).
	var perm [isa.NumRegs]isa.Reg
	for i := range perm {
		perm[i] = isa.Reg(i)
	}
	if cfg.RegRename {
		// Permute R0..R13, keep R14 (SP) and R15 (junk) fixed.
		idx := rng.Perm(14)
		for i := 0; i < 14; i++ {
			perm[i] = isa.Reg(idx[i])
		}
	}
	rewritten := make([]isa.Instruction, 0, len(p.Insns))
	for _, in := range p.Insns {
		out := in
		out.Dst = renameOperand(out.Dst, &perm)
		out.Src = renameOperand(out.Src, &perm)
		if cfg.SubstituteRate > 0 && rng.Float64() < cfg.SubstituteRate {
			out = substitute(out, rng)
		}
		rewritten = append(rewritten, out)
	}

	// Pass 2: insertion (NOPs and junk blocks). We work with a list of
	// "cells": each original instruction may gain a prefix of inserted
	// instructions. Inserted branches use placeholder targets fixed
	// during reassembly via the jumpToNext marker.
	flagSafe := flagSafePositions(rewritten)
	type cell struct {
		prefix []isa.Instruction // inserted; jumpToNext markers allowed
		insn   isa.Instruction
	}
	cells := make([]cell, len(rewritten))
	for i, in := range rewritten {
		var prefix []isa.Instruction
		if cfg.NopRate > 0 && rng.Float64() < cfg.NopRate {
			prefix = append(prefix, isa.Instruction{Op: isa.NOP, Size: 4})
		}
		if cfg.JunkRate > 0 && flagSafe[i] && rng.Float64() < cfg.JunkRate {
			prefix = append(prefix, junkBlock(rng)...)
		}
		cells[i] = cell{prefix: prefix, insn: in}
	}

	// Pass 3: reassembly. Assign new addresses, then remap branch
	// targets through oldAddr -> newAddr.
	base := p.MinAddr()
	newAddr := make(map[uint64]uint64, len(p.Insns))
	var flat []isa.Instruction
	addr := base
	junkBranch := make(map[int]bool) // indices in flat already resolved
	for _, c := range cells {
		// The cell's real instruction lands after the whole prefix; junk
		// branches inside the prefix jump directly to it, skipping their
		// dead payloads.
		prefixSize := uint64(0)
		for _, pin := range c.prefix {
			prefixSize += uint64(pin.Size)
		}
		mainAddr := addr + prefixSize
		for _, pin := range c.prefix {
			pin.Addr = addr
			if pin.Op.IsBranch() && pin.Dst.Kind == isa.OpImm &&
				uint64(pin.Dst.Disp) == jumpToNextMarker {
				pin.Dst = isa.Imm(int64(mainAddr))
				junkBranch[len(flat)] = true
			}
			flat = append(flat, pin)
			addr += uint64(pin.Size)
		}
		newAddr[c.insn.Addr] = mainAddr
		c.insn.Addr = mainAddr
		flat = append(flat, c.insn)
		addr = mainAddr + uint64(c.insn.Size)
	}
	// Remap the original branches through oldAddr -> newAddr.
	for i := range flat {
		in := &flat[i]
		if junkBranch[i] {
			continue
		}
		if in.Op.IsBranch() && in.Dst.Kind == isa.OpImm {
			old := uint64(in.Dst.Disp)
			na, ok := newAddr[old]
			if !ok {
				return nil, fmt.Errorf("mutate: branch at %#x targets unknown address %#x", in.Addr, old)
			}
			in.Dst = isa.Imm(int64(na))
		}
	}

	labels := make(map[string]uint64, len(p.Labels))
	for name, a := range p.Labels {
		if na, ok := newAddr[a]; ok {
			labels[name] = na
		}
	}
	entry, ok := newAddr[p.Entry]
	if !ok {
		return nil, fmt.Errorf("mutate: entry %#x vanished", p.Entry)
	}
	data := make([]isa.DataSegment, len(p.Data))
	copy(data, p.Data)
	out := &isa.Program{
		Name:   fmt.Sprintf("%s#m%d", p.Name, cfg.Seed),
		Entry:  entry,
		Insns:  flat,
		Data:   data,
		Labels: labels,
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("mutate: produced invalid program: %w", err)
	}
	return out, nil
}

// jumpToNextMarker is an impossible code address used as a placeholder
// target for inserted always-taken junk branches.
const jumpToNextMarker = ^uint64(0) >> 1

func renameOperand(o isa.Operand, perm *[isa.NumRegs]isa.Reg) isa.Operand {
	switch o.Kind {
	case isa.OpReg:
		o.Base = perm[o.Base]
	case isa.OpMem:
		if o.Base != isa.RegNone {
			o.Base = perm[o.Base]
		}
		if o.Index != isa.RegNone {
			o.Index = perm[o.Index]
		}
	}
	return o
}

// substitute replaces an instruction with an equivalent form when one
// applies; otherwise it returns the instruction unchanged.
func substitute(in isa.Instruction, _ *rand.Rand) isa.Instruction {
	isReg := func(o isa.Operand) bool { return o.Kind == isa.OpReg }
	switch {
	case in.Op == isa.INC && isReg(in.Dst):
		in.Op, in.Src = isa.ADD, isa.Imm(1)
	case in.Op == isa.DEC && isReg(in.Dst):
		in.Op, in.Src = isa.SUB, isa.Imm(1)
	case in.Op == isa.ADD && isReg(in.Dst) && in.Src.Kind == isa.OpImm && in.Src.Disp == 1:
		in.Op, in.Src = isa.INC, isa.None()
	case in.Op == isa.SUB && isReg(in.Dst) && in.Src.Kind == isa.OpImm && in.Src.Disp == 1:
		in.Op, in.Src = isa.DEC, isa.None()
	case in.Op == isa.SHL && isReg(in.Dst) && in.Src.Kind == isa.OpImm && in.Src.Disp == 1:
		in.Op, in.Src = isa.ADD, isa.R(in.Dst.Base)
	case in.Op == isa.TEST && isReg(in.Dst) && isReg(in.Src) && in.Dst.Base == in.Src.Base:
		in.Op, in.Src = isa.CMP, isa.Imm(0)
	}
	return in
}

// flagSafePositions reports, per instruction index, whether inserting a
// flag-writing junk block BEFORE the instruction is safe: scanning
// forward from the instruction, a flag writer is reached before any flag
// reader.
func flagSafePositions(ins []isa.Instruction) []bool {
	// safeAfter[i]: flags are dead entering instruction i.
	n := len(ins)
	safe := make([]bool, n)
	// Walk backwards: track whether flags are live at entry of i.
	live := false
	for i := n - 1; i >= 0; i-- {
		in := ins[i]
		switch {
		case in.Op.IsCondBranch():
			live = true
		case writesFlags(in.Op):
			live = false
		case in.Op == isa.JMP || in.Op == isa.CALL || in.Op == isa.RET || in.Op == isa.HLT:
			// Control transfer: the target's needs are unknown; be
			// conservative and treat flags as live across it only if a
			// conditional branch could be the target's first use. Our
			// generators never branch to a conditional consumer without
			// a preceding setter, so flags are dead here.
			live = false
		}
		safe[i] = !live
	}
	return safe
}

func writesFlags(op isa.Opcode) bool {
	switch op {
	case isa.ADD, isa.SUB, isa.MUL, isa.XOR, isa.AND, isa.OR,
		isa.SHL, isa.SHR, isa.INC, isa.DEC, isa.CMP, isa.TEST:
		return true
	}
	return false
}

// junkBlock emits an opaque always-taken branch over a dead payload:
//
//	cmp r15, r15      ; sets ZF
//	je  <next>        ; always taken -> payload is dead
//	mul r15, imm      ; dead payload
//	xor r15, imm
//
// The branch splits the enclosing basic block in two and the payload
// forms a third (unreachable) block, which is how the obfuscated
// variants gain ~70% more blocks.
func junkBlock(rng *rand.Rand) []isa.Instruction {
	payloadLen := 1 + rng.Intn(3)
	out := []isa.Instruction{
		{Op: isa.CMP, Dst: isa.R(junkReg), Src: isa.R(junkReg), Size: 4},
		{Op: isa.JE, Dst: isa.Imm(int64(jumpToNextMarker)), Size: 4},
	}
	ops := []isa.Opcode{isa.MUL, isa.XOR, isa.ADD, isa.OR}
	for i := 0; i < payloadLen; i++ {
		out = append(out, isa.Instruction{
			Op:   ops[rng.Intn(len(ops))],
			Dst:  isa.R(junkReg),
			Src:  isa.Imm(int64(rng.Intn(1 << 16))),
			Size: 4,
		})
	}
	return out
}
