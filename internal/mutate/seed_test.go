package mutate

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"testing"

	"repro/internal/attacks"
)

// TestDeriveSeedPinned pins the derivation to its current values: the
// mapping is part of the corpus format (variant names embed the derived
// seed), so any change here silently regenerates every derived corpus.
// If you change DeriveSeed on purpose, update these values and bump the
// corpus format notes in docs/INDEXING.md.
func TestDeriveSeedPinned(t *testing.T) {
	pinned := []struct {
		base  int64
		parts []string
	}{
		{0, nil},
		{0, []string{""}},
		{0, []string{"a", "b"}},
		{0, []string{"ab"}},
		{1, []string{"FR-IAIK", "v000"}},
		{1, []string{"FR-IAIK", "v001"}},
		{-7, []string{"PP-IAIK", "v001"}},
	}
	got := make([]int64, len(pinned))
	for i, c := range pinned {
		got[i] = DeriveSeed(c.base, c.parts...)
	}
	want := []int64{
		-4359066618775142608,
		6603144262649002859,
		1942235623055557745,
		-1555494724144602679,
		-1753034655227754192,
		2409399076640196318,
		527326032856503418,
	}
	for i := range pinned {
		if got[i] != want[i] {
			t.Errorf("DeriveSeed(%d, %q) = %d, want %d", pinned[i].base, pinned[i].parts, got[i], want[i])
		}
	}
}

// TestDeriveSeedSeparates checks the properties the corpus builder
// relies on: length-prefixing keeps part boundaries significant, the
// base folds in, and near-identical names do not collide.
func TestDeriveSeedSeparates(t *testing.T) {
	if DeriveSeed(0, "ab", "c") == DeriveSeed(0, "a", "bc") {
		t.Error("part boundaries must be significant")
	}
	if DeriveSeed(0, "x") == DeriveSeed(1, "x") {
		t.Error("base must fold in")
	}
	seen := make(map[int64]string)
	for fam := 0; fam < 8; fam++ {
		for i := 0; i < 256; i++ {
			name := fmt.Sprintf("fam%d", fam)
			s := DeriveSeed(99, name, strconv.Itoa(i))
			if prev, dup := seen[s]; dup {
				t.Fatalf("collision: (%s,%d) and %s both map to %d", name, i, prev, s)
			}
			seen[s] = fmt.Sprintf("(%s,%d)", name, i)
		}
	}
}

// mutantDigest is a byte-level fingerprint of a mutated program: every
// instruction field, the entry point, and the name. Two equal digests
// mean byte-identical mutants.
func mutantDigest(t *testing.T, base int64, family string, index int) string {
	t.Helper()
	params := attacks.DefaultParams()
	var poc attacks.PoC
	for _, p := range attacks.All(params) {
		if p.Name == family {
			poc = p
			break
		}
	}
	if poc.Program == nil {
		t.Fatalf("no PoC named %s", family)
	}
	seed := DeriveSeed(base, family, strconv.Itoa(index))
	m, err := Mutate(poc.Program, LightConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s|%d|", m.Name, m.Entry)
	for _, in := range m.Insns {
		fmt.Fprintf(h, "%d,%d,%d,%v,%v;", in.Addr, in.Size, in.Op, in.Dst, in.Src)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestMutateDerivedSeedReproducible is the reproducibility regression
// the stress corpus depends on: the same (base, family, index) triple
// yields a byte-identical mutant regardless of what else was generated
// before it — unlike sequential draws from a shared rand.Rand, where a
// variant's identity depends on its position in the generation loop.
func TestMutateDerivedSeedReproducible(t *testing.T) {
	first := mutantDigest(t, 7, "FR-IAIK", 3)
	// Generating other variants in between must not perturb it.
	_ = mutantDigest(t, 7, "FR-IAIK", 0)
	_ = mutantDigest(t, 7, "PP-IAIK", 3)
	second := mutantDigest(t, 7, "FR-IAIK", 3)
	if first != second {
		t.Fatalf("derived-seed mutation not reproducible: %s vs %s", first, second)
	}
	if other := mutantDigest(t, 7, "FR-IAIK", 4); other == first {
		t.Fatal("neighboring indices must produce distinct mutants")
	}
}
