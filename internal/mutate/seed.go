package mutate

import "hash/fnv"

// DeriveSeed maps a base seed plus a list of name parts to a mutation
// seed, deterministically and order-independently of any surrounding
// generation loop. Callers that mint one variant per (family, index)
// pair should seed each Mutate from
// DeriveSeed(base, family, strconv.Itoa(i)) rather than drawing
// sequentially from one shared rand.Rand: sequential draws make every
// variant's identity depend on how many variants were generated before
// it, so inserting one family reshuffles every later family's corpus.
// With derived seeds the corpus is a pure function of (base, family,
// index) — stable under reordering, subsetting and parallel
// generation. The stress-corpus builder (internal/detect, `scaguard
// corpus -out`) relies on this for its byte-for-byte reproducibility
// guarantee.
//
// The derivation is FNV-1a over the length-prefixed parts folded with
// the base, finished with the splitmix64 mixer so that near-identical
// inputs ("v001" vs "v002") land on well-separated seeds. The mapping
// is part of the corpus format: changing it regenerates every derived
// corpus, so it is pinned by a golden test.
func DeriveSeed(base int64, parts ...string) int64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, p := range parts {
		// Length-prefix each part so ("ab","c") and ("a","bc") differ.
		n := uint64(len(p))
		for i := range buf {
			buf[i] = byte(n >> (8 * i))
		}
		h.Write(buf[:])
		h.Write([]byte(p))
	}
	x := h.Sum64() ^ uint64(base)
	// splitmix64 finalizer.
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}
