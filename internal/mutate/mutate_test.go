package mutate

import (
	"testing"

	"repro/internal/attacks"
	"repro/internal/cfg"
	"repro/internal/exec"
	"repro/internal/isa"
)

func TestMutateRejectsBadInput(t *testing.T) {
	if _, err := Mutate(nil, LightConfig(1)); err == nil {
		t.Error("nil program must fail")
	}
	if _, err := Mutate(&isa.Program{Name: "x"}, LightConfig(1)); err == nil {
		t.Error("invalid program must fail")
	}
}

func TestMutateDeterministic(t *testing.T) {
	poc := attacks.FlushReloadIAIK(attacks.DefaultParams())
	a, err := Mutate(poc.Program, LightConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Mutate(poc.Program, LightConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Insns) != len(b.Insns) {
		t.Fatal("nondeterministic size")
	}
	for i := range a.Insns {
		if a.Insns[i] != b.Insns[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
}

func TestMutateChangesSyntax(t *testing.T) {
	poc := attacks.FlushReloadIAIK(attacks.DefaultParams())
	m, err := Mutate(poc.Program, LightConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if m.Name == poc.Program.Name {
		t.Error("mutant must be renamed")
	}
	diff := 0
	n := len(poc.Program.Insns)
	if len(m.Insns) < n {
		n = len(m.Insns)
	}
	for i := 0; i < n; i++ {
		if poc.Program.Insns[i].Op != m.Insns[i].Op ||
			poc.Program.Insns[i].Dst != m.Insns[i].Dst {
			diff++
		}
	}
	if diff == 0 && len(m.Insns) == len(poc.Program.Insns) {
		t.Error("mutation changed nothing")
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	poc := attacks.PrimeProbeIAIK(attacks.DefaultParams())
	a, _ := Mutate(poc.Program, LightConfig(1))
	b, _ := Mutate(poc.Program, LightConfig(2))
	same := len(a.Insns) == len(b.Insns)
	if same {
		for i := range a.Insns {
			if a.Insns[i] != b.Insns[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical mutants")
	}
}

// The decisive test: a mutated Flush+Reload still recovers the secret.
func TestMutatedAttackStillWorks(t *testing.T) {
	p := attacks.DefaultParams()
	poc := attacks.FlushReloadIAIK(p)
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		m, err := Mutate(poc.Program, LightConfig(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		runAndCheckSecret(t, m, poc.Victim, p, "hits")
	}
}

func TestObfuscatedAttackStillWorks(t *testing.T) {
	p := attacks.DefaultParams()
	poc := attacks.FlushReloadMastik(p)
	for _, seed := range []int64{11, 12, 13} {
		m, err := Mutate(poc.Program, ObfuscationConfig(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		runAndCheckSecret(t, m, poc.Victim, p, "hist")
	}
}

func runAndCheckSecret(t *testing.T, prog, victim *isa.Program, p attacks.Params, seg string) {
	t.Helper()
	machine, err := exec.NewMachine(exec.DefaultConfig(), prog, victim)
	if err != nil {
		t.Fatal(err)
	}
	tr := machine.Run()
	if !tr.Halted {
		t.Fatalf("%s: mutant did not halt", prog.Name)
	}
	s, ok := prog.Segment(seg)
	if !ok {
		t.Fatalf("%s: segment %q missing", prog.Name, seg)
	}
	best, bestV := -1, uint64(0)
	for i := 0; i < p.Lines; i++ {
		v := machine.Memory().Load64(s.Addr + uint64(i*8))
		if v > bestV {
			best, bestV = i, v
		}
	}
	if best != p.Secret {
		t.Errorf("%s: recovered %d (count %d), want %d", prog.Name, best, bestV, p.Secret)
	}
}

// Obfuscation must inflate the basic-block count substantially (the
// paper reports +70.49% on average).
func TestObfuscationInflatesBlocks(t *testing.T) {
	poc := attacks.FlushReloadIAIK(attacks.DefaultParams())
	orig := cfg.MustBuild(poc.Program).NumBlocks()
	total := 0.0
	const trials = 8
	for seed := int64(0); seed < trials; seed++ {
		m, err := Mutate(poc.Program, ObfuscationConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		obf := cfg.MustBuild(m).NumBlocks()
		total += float64(obf-orig) / float64(orig)
	}
	avg := total / trials * 100
	if avg < 40 || avg > 120 {
		t.Errorf("average BB inflation = %.1f%%, want roughly 70%%", avg)
	}
}

func TestLightMutationKeepsSizeSimilar(t *testing.T) {
	poc := attacks.EvictReloadIAIK(attacks.DefaultParams())
	m, err := Mutate(poc.Program, LightConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(m.Insns)) / float64(len(poc.Program.Insns))
	if ratio > 1.3 {
		t.Errorf("light mutation grew program by %.0f%%", (ratio-1)*100)
	}
}

func TestAttackMarksSurviveMutation(t *testing.T) {
	poc := attacks.FlushReloadIAIK(attacks.DefaultParams())
	m, err := Mutate(poc.Program, ObfuscationConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.AttackAddrs()) != len(poc.Program.AttackAddrs()) {
		t.Errorf("attack marks: %d -> %d", len(poc.Program.AttackAddrs()), len(m.AttackAddrs()))
	}
}

func TestLabelsAndEntryRemapped(t *testing.T) {
	b := isa.NewBuilder("lbl", 0x100)
	b.Label("start").Nop().Label("mid").Nop().Jmp("mid").Entry("start")
	p := b.MustBuild()
	m, err := Mutate(p, Config{Seed: 1, NopRate: 1}) // force insertions
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.At(m.Entry); !ok {
		t.Error("entry not remapped to an instruction")
	}
	mid, ok := m.Labels["mid"]
	if !ok {
		t.Fatal("label lost")
	}
	if in, _ := m.At(mid); in.Op != isa.NOP {
		t.Errorf("label mid points at %v", in.Op)
	}
}

// Substituted forms must be semantically identical: run a program
// exercising every substitution and compare final register state.
func TestSubstitutionEquivalence(t *testing.T) {
	build := func() *isa.Program {
		b := isa.NewBuilder("subst", 0)
		b.Mov(isa.R(isa.R0), isa.Imm(10)).
			Inc(isa.R(isa.R0)).                 // -> add 1
			Dec(isa.R(isa.R0)).                 // -> sub 1
			Add(isa.R(isa.R0), isa.Imm(1)).     // -> inc
			Sub(isa.R(isa.R0), isa.Imm(1)).     // -> dec
			Shl(isa.R(isa.R0), isa.Imm(1)).     // -> add self
			Test(isa.R(isa.R0), isa.R(isa.R0)). // -> cmp 0
			Je("zero").
			Inc(isa.R(isa.R1)).
			Label("zero").
			Hlt()
		return b.MustBuild()
	}
	run := func(p *isa.Program) [2]uint64 {
		m, err := exec.NewMachine(exec.DefaultConfig(), p, nil)
		if err != nil {
			t.Fatal(err)
		}
		tr := m.Run()
		if !tr.Halted {
			t.Fatal("did not halt")
		}
		mem := m.Memory()
		_ = mem
		return [2]uint64{regValue(m, 0), regValue(m, 1)}
	}
	orig := run(build())
	mut, err := Mutate(build(), Config{Seed: 3, SubstituteRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := run(mut)
	if orig != got {
		t.Errorf("substitution changed semantics: %v vs %v", orig, got)
	}
}

// regValue peeks a register of the monitored process via the exported
// test hook: re-run is cheap so we read through memory instead. Here we
// cheat by adding stores in the test program; to keep it simple this
// helper reads the canonical result registers via reflection-free means.
func regValue(m *exec.Machine, r int) uint64 {
	return m.RegisterOfMonitored(isa.Reg(r))
}

func TestFlagSafePositions(t *testing.T) {
	ins := []isa.Instruction{
		{Op: isa.MOV, Dst: isa.R(isa.R0), Src: isa.Imm(1), Size: 4},
		{Op: isa.CMP, Dst: isa.R(isa.R0), Src: isa.Imm(2), Size: 4},
		{Op: isa.JL, Dst: isa.Imm(0), Size: 4},
		{Op: isa.HLT, Size: 4},
	}
	safe := flagSafePositions(ins)
	if !safe[0] || !safe[1] {
		t.Error("positions before the CMP must be flag-safe")
	}
	if safe[2] {
		t.Error("position between CMP and JL must be unsafe")
	}
	if !safe[3] {
		t.Error("position after the branch must be safe")
	}
}

func TestJunkBlockShape(t *testing.T) {
	poc := attacks.FlushReloadIAIK(attacks.DefaultParams())
	m, err := Mutate(poc.Program, Config{Seed: 2, JunkRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Every junk JE must target an address inside the program.
	for _, in := range m.Insns {
		if t2, ok := in.BranchTarget(); ok {
			if _, exists := m.At(t2); !exists {
				t.Fatalf("branch at %#x targets nothing", in.Addr)
			}
		}
	}
}
