// Package chaos is the fault-injection soak harness for the replicated
// shard fleet (internal/shard + internal/breaker): it stands up a real
// loopback HTTP fleet — P partitions × R replicas, each a shard.Server
// on its own port — drives concurrent classification load through a
// detect.Detector configured with replica failover, and meanwhile
// kills, revives, slows and flaps backends, asserting after every
// disruption that the robustness contract held:
//
//   - While at least one replica per partition lives, every verdict is
//     complete and bit-identical to a single-engine reference detector
//     over the same repository. Failover must never change a score.
//   - When a whole partition goes dark (a blackout), every scan
//     degrades with a *shard.PartialError and the shard_degraded_scans
//     counter advances exactly once per scan — no silent gaps, no
//     double counting.
//   - After every backend is revived, the circuit breakers converge
//     back to closed within a few probe intervals (breaker_closes
//     advances), and a quiet load burst records zero further
//     shard_failovers — recovery is total, not merely tolerated.
//   - The run leaks no goroutines: detector Close stops the health
//     prober, scan cancellation reaps the scatter–gather workers.
//
// Scenarios are driven by a seeded math/rand source, so a failing run
// reproduces from its seed alone. Run is meant to be called from test
// binaries only (`make chaos`, scripts/chaos-smoke.sh): it arms
// faultinject points (the package-wide convention reserves Enable for
// tests) and asserts via returned errors, never panics.
//
// See docs/ROBUSTNESS.md for the failure-mode matrix this harness
// enforces.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/attacks"
	"repro/internal/breaker"
	"repro/internal/cache"
	"repro/internal/detect"
	"repro/internal/faultinject"
	"repro/internal/model"
	"repro/internal/shard"
	"repro/internal/telemetry"
)

// Options tunes a soak run. The zero value selects a small but
// complete run (every scenario kind at least once when Rounds >= 4).
type Options struct {
	// Seed drives every random choice; a run reproduces from it.
	Seed int64
	// Partitions is the number of shard groups (default 2).
	Partitions int
	// Replicas per partition (default 2).
	Replicas int
	// Clients is the concurrent classification goroutines per burst
	// (default 4).
	Clients int
	// ScansPerClient per burst (default 3).
	ScansPerClient int
	// Rounds of disruption (default 6).
	Rounds int
	// Entries in the synthetic repository (default 24).
	Entries int
	// Targets is how many distinct targets the load draws from
	// (default 6).
	Targets int
	// Log, when non-nil, receives one line per scenario step
	// (testing.T.Logf fits).
	Log func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Partitions <= 0 {
		o.Partitions = 2
	}
	if o.Replicas <= 0 {
		o.Replicas = 2
	}
	if o.Clients <= 0 {
		o.Clients = 4
	}
	if o.ScansPerClient <= 0 {
		o.ScansPerClient = 3
	}
	if o.Rounds <= 0 {
		o.Rounds = 6
	}
	if o.Entries <= 0 {
		o.Entries = 24
	}
	if o.Targets <= 0 {
		o.Targets = 6
	}
	if o.Log == nil {
		o.Log = func(string, ...any) {}
	}
	return o
}

// Report summarizes a completed soak for assertions and logging.
type Report struct {
	// Rounds actually executed.
	Rounds int
	// Scans issued across all bursts.
	Scans int
	// DegradedScans observed (all during blackout phases).
	DegradedScans uint64
	// Failovers recorded by telemetry.
	Failovers uint64
	// BreakerOpens / BreakerCloses recorded by telemetry; Closes > 0
	// proves re-admission actually happened.
	BreakerOpens  uint64
	BreakerCloses uint64
	// Blackouts is how many whole-group outages were staged.
	Blackouts int
}

// replica is one controllable backend: a shard.Server the harness can
// stop and restart on the same address.
type replica struct {
	slice []*model.CSTBBS
	ver   uint64

	mu       sync.Mutex
	addr     string // bound on first Start, stable afterwards
	shutdown func(context.Context) error
}

func (r *replica) start() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.shutdown != nil {
		return nil
	}
	addr := r.addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	srv := shard.NewServer(r.slice, shard.ServerConfig{Version: r.ver})
	bound, shutdown, err := srv.Serve(addr)
	if err != nil {
		return fmt.Errorf("chaos: start replica %s: %w", addr, err)
	}
	r.addr, r.shutdown = bound, shutdown
	return nil
}

func (r *replica) stop() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.shutdown == nil {
		return nil
	}
	// A chaos kill is abrupt by design: a short grace period, then the
	// shutdown func force-closes (deadline expiry is the expected
	// outcome of killing a backend with live keep-alive conns, not a
	// failure).
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	err := r.shutdown(ctx)
	r.shutdown = nil
	if errors.Is(err, context.DeadlineExceeded) {
		return nil
	}
	return err
}

func (r *replica) alive() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.shutdown != nil
}

// slowMap is the shard.replica.rpc dispatcher state: replica name →
// injected pre-attempt failure. The harness arms one dispatcher for
// the whole run and toggles entries per scenario.
type slowMap struct{ m sync.Map }

func (s *slowMap) action(p faultinject.Point, detail string) error {
	if v, ok := s.m.Load(detail); ok {
		d := v.(time.Duration)
		time.Sleep(d)
		return fmt.Errorf("chaos: replica %s too slow (simulated %v stall)", detail, d)
	}
	return nil
}

// Run executes one soak and returns its report; any broken invariant
// comes back as an error naming the seed, round and scenario.
func Run(o Options) (Report, error) {
	o = o.withDefaults()
	rng := rand.New(rand.NewSource(o.Seed))
	var rep Report

	// Synthetic repository: deterministic models long enough to clear
	// the detector's MinModelLen gate.
	repo := &detect.Repository{}
	for i, bbs := range corpus(rng, o.Entries) {
		repo.Add(bbs.Name, attacks.Families()[i%len(attacks.Families())], bbs)
	}
	targets := corpus(rng, o.Targets)

	// Reference verdicts from a single-engine detector over the same
	// repository — the bit-identity oracle.
	refDet := detect.NewDetector(repo)
	refs := make([]detect.Result, len(targets))
	for i, tgt := range targets {
		refs[i] = refDet.ClassifyBBS(tgt)
	}

	// The fleet: Partitions × Replicas servers over the router's slices.
	router := shard.Router{Shards: o.Partitions}
	models := make([]*model.CSTBBS, repo.Len())
	for i, e := range repo.Entries {
		models[i] = e.BBS
	}
	fleet := make([][]*replica, o.Partitions)
	addrs := make([]string, o.Partitions)
	defer func() {
		for _, group := range fleet {
			for _, r := range group {
				_ = r.stop()
			}
		}
	}()
	for p := 0; p < o.Partitions; p++ {
		fleet[p] = make([]*replica, o.Replicas)
		names := make([]string, o.Replicas)
		for j := 0; j < o.Replicas; j++ {
			fleet[p][j] = &replica{slice: shard.ShardModels(models, router, p), ver: repo.Version()}
			if err := fleet[p][j].start(); err != nil {
				return rep, err
			}
			names[j] = fleet[p][j].addr
		}
		addrs[p] = strings.Join(names, "|")
	}

	// The detector under test: replica failover, aggressive breakers and
	// a fast prober so convergence is observable within a short soak.
	tel := telemetry.NewCollector()
	det := detect.NewDetector(repo)
	det.ShardAddrs = addrs
	det.ShardTimeout = 10 * time.Second
	det.ShardAttemptTimeout = time.Second
	det.ShardBreaker = breaker.Settings{Threshold: 2, OpenInterval: 25 * time.Millisecond, MaxOpenInterval: 200 * time.Millisecond}
	det.ShardProbeInterval = 20 * time.Millisecond
	det.Telemetry = tel
	defer det.Close()

	// One dispatcher owns the shard.replica.rpc failpoint for the whole
	// run; scenarios toggle per-replica entries in the map.
	slow := &slowMap{}
	faultinject.Enable(faultinject.ShardReplicaRPC, slow.action)
	defer faultinject.Disable(faultinject.ShardReplicaRPC)

	goroutinesBefore := runtime.NumGoroutine()

	// burst drives Clients×ScansPerClient concurrent classifications.
	// wantComplete asserts bit-identity against the reference; else
	// every scan must degrade with a *shard.PartialError.
	burst := func(tag string, wantComplete bool) error {
		var wg sync.WaitGroup
		var firstErr atomic.Value
		fail := func(err error) {
			firstErr.CompareAndSwap(nil, err) //nolint:errcheck // only first error kept
		}
		for c := 0; c < o.Clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for s := 0; s < o.ScansPerClient; s++ {
					ti := (c + s) % len(targets)
					res, err := det.ClassifyBBSCtx(context.Background(), targets[ti])
					if wantComplete {
						if err != nil {
							fail(fmt.Errorf("%s: scan failed: %w", tag, err))
							return
						}
						if !reflect.DeepEqual(res, refs[ti]) {
							fail(fmt.Errorf("%s: verdict for target %d diverged from the single-engine reference", tag, ti))
							return
						}
						continue
					}
					var pe *shard.PartialError
					if !errors.As(err, &pe) {
						fail(fmt.Errorf("%s: blackout scan returned %v, want *shard.PartialError", tag, err))
						return
					}
				}
			}(c)
		}
		wg.Wait()
		rep.Scans += o.Clients * o.ScansPerClient
		if err, ok := firstErr.Load().(error); ok && err != nil {
			return err
		}
		return nil
	}

	// converge waits for every breaker to return to closed.
	converge := func(tag string) error {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			open := 0
			for _, st := range det.ShardBreakerStates() {
				if st != breaker.Closed {
					open++
				}
			}
			if open == 0 {
				return nil
			}
			time.Sleep(10 * time.Millisecond)
		}
		return fmt.Errorf("%s: breakers never converged to closed: %v", tag, det.ShardBreakerStates())
	}

	// Warm up: build the engine, prove the healthy fleet is complete
	// and bit-identical before any faults.
	if err := burst("warmup", true); err != nil {
		return rep, fmt.Errorf("seed %d: %w", o.Seed, err)
	}

	for round := 0; round < o.Rounds; round++ {
		p := rng.Intn(o.Partitions)
		j := rng.Intn(o.Replicas)
		victim := fleet[p][j]
		// The first four rounds walk every scenario once (single-kill
		// failover, whole-group blackout, slow replica, flapper) so a
		// default soak covers each; later rounds draw from the full set.
		kind := round
		if round >= 4 {
			kind = rng.Intn(4)
		}
		tag := fmt.Sprintf("seed %d round %d", o.Seed, round)

		switch kind {
		case 0: // kill one replica: scans stay complete via failover
			o.Log("%s: kill %s", tag, victim.addr)
			if err := victim.stop(); err != nil {
				return rep, err
			}
			if err := burst(tag+" (one replica down)", true); err != nil {
				return rep, err
			}
		case 1: // blackout: the whole group goes dark
			o.Log("%s: blackout partition %d", tag, p)
			rep.Blackouts++
			for _, r := range fleet[p] {
				if err := r.stop(); err != nil {
					return rep, err
				}
			}
			before := tel.Counter(telemetry.ShardDegradedScans)
			scans := o.Clients * o.ScansPerClient
			if err := burst(tag+" (blackout)", false); err != nil {
				return rep, err
			}
			if got := tel.Counter(telemetry.ShardDegradedScans) - before; got != uint64(scans) {
				return rep, fmt.Errorf("%s: %d scans degraded %d times, want exactly once each", tag, scans, got)
			}
		case 2: // slow replica: attempt stalls, failover keeps bit-identity
			o.Log("%s: slow %s", tag, victim.addr)
			slow.m.Store(victim.addr, 50*time.Millisecond)
			if err := burst(tag+" (slow replica)", true); err != nil {
				return rep, err
			}
			slow.m.Delete(victim.addr)
		case 3: // flap: kill and revive twice, quarantine must absorb it
			o.Log("%s: flap %s", tag, victim.addr)
			for f := 0; f < 2; f++ {
				if err := victim.stop(); err != nil {
					return rep, err
				}
				if err := burst(tag+" (flap down)", true); err != nil {
					return rep, err
				}
				if err := victim.start(); err != nil {
					return rep, err
				}
				if err := converge(tag + " (flap revive)"); err != nil {
					return rep, err
				}
			}
		}

		// Heal everything and require total recovery: breakers closed,
		// then a quiet burst with zero further failovers.
		for _, group := range fleet {
			for _, r := range group {
				if !r.alive() {
					if err := r.start(); err != nil {
						return rep, err
					}
				}
			}
		}
		if err := converge(tag + " (healed)"); err != nil {
			return rep, err
		}
		failoversBefore := tel.Counter(telemetry.ShardFailovers)
		if err := burst(tag+" (recovered)", true); err != nil {
			return rep, err
		}
		if d := tel.Counter(telemetry.ShardFailovers) - failoversBefore; d != 0 {
			return rep, fmt.Errorf("%s: %d failovers on a fully healed fleet, want 0", tag, d)
		}
		rep.Rounds++
	}

	rep.DegradedScans = tel.Counter(telemetry.ShardDegradedScans)
	rep.Failovers = tel.Counter(telemetry.ShardFailovers)
	rep.BreakerOpens = tel.Counter(telemetry.BreakerOpens)
	rep.BreakerCloses = tel.Counter(telemetry.BreakerCloses)
	if rep.BreakerOpens == 0 || rep.BreakerCloses == 0 {
		return rep, fmt.Errorf("seed %d: breakers never cycled (opens=%d closes=%d) — the soak did not exercise quarantine",
			o.Seed, rep.BreakerOpens, rep.BreakerCloses)
	}

	// No goroutine leaks: stop the prober and let the fleet drain.
	det.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		// The fleet's listeners are still up (deferred stops run after
		// this check), so allow their accept loops plus slack.
		if runtime.NumGoroutine() <= goroutinesBefore+2 {
			break
		}
		if time.Now().After(deadline) {
			return rep, fmt.Errorf("seed %d: goroutine leak: %d before soak, %d after",
				o.Seed, goroutinesBefore, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
	return rep, nil
}

// corpus synthesizes deterministic CST-BBS models: every model is at
// least MinModelLen blocks and reads a timer, so none are gated out of
// classification.
func corpus(rng *rand.Rand, n int) []*model.CSTBBS {
	vocab := [][]string{
		{"clflush mem"},
		{"mov reg, mem", "rdtscp reg"},
		{"mov reg, mem", "add reg, imm", "cmp reg, imm"},
		{"rdtscp reg", "mov reg, mem", "rdtscp reg", "sub reg, reg"},
		{"add reg, imm"},
		{"mov reg, mem"},
	}
	out := make([]*model.CSTBBS, n)
	for i := range out {
		b := &model.CSTBBS{Name: fmt.Sprintf("chaos-%03d", i), TimerReads: 1}
		for k, kn := 0, detect.MinModelLen+rng.Intn(6); k < kn; k++ {
			d := float64(rng.Intn(10)) / 16
			b.Seq = append(b.Seq, model.CST{
				NormInsns: vocab[rng.Intn(len(vocab))],
				Before:    cache.State{AO: 0, IO: 1},
				After:     cache.State{AO: d, IO: 1 - d},
			})
		}
		out[i] = b
	}
	return out
}
