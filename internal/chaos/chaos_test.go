package chaos

import (
	"os"
	"strconv"
	"testing"
)

// TestChaosSoak is the chaos soak entry point (`make chaos`,
// scripts/chaos-smoke.sh). Knobs:
//
//	CHAOS_SEED    deterministic scenario seed (default 1)
//	CHAOS_ROUNDS  disruption rounds (default 6; smoke runs use 3)
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	o := Options{Seed: int64(envInt(t, "CHAOS_SEED", 1)), Rounds: envInt(t, "CHAOS_ROUNDS", 6), Log: t.Logf}
	rep, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("soak: %d rounds, %d scans, %d blackouts, %d degraded, %d failovers, breakers opened %d / closed %d",
		rep.Rounds, rep.Scans, rep.Blackouts, rep.DegradedScans, rep.Failovers, rep.BreakerOpens, rep.BreakerCloses)
	if rep.Failovers == 0 {
		t.Fatal("soak recorded zero failovers — the scenarios never exercised replica failover")
	}
}

// TestChaosSoakReproducible re-runs a short soak with the same seed and
// requires the same disruption schedule (blackout count) both times —
// the property that makes CHAOS_SEED a usable repro handle.
func TestChaosSoakReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	a, err := Run(Options{Seed: 7, Rounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Options{Seed: 7, Rounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.Blackouts != b.Blackouts || a.Scans != b.Scans {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func envInt(t *testing.T, key string, def int) int {
	t.Helper()
	v := os.Getenv(key)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		t.Fatalf("%s=%q: %v", key, v, err)
	}
	return n
}
