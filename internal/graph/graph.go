// Package graph provides the directed-graph algorithms behind SCAGuard's
// attack-relevant graph construction (Algorithm 1 of the paper): DFS
// back-edge elimination, simple-path enumeration that avoids a set of
// excluded interior nodes, and Prim's algorithm for maximum spanning
// trees over a weighted undirected view of the path graph.
//
// Nodes are identified by uint64 keys (the pipeline uses basic-block
// leader addresses). All algorithms are deterministic: neighbor lists
// keep insertion order and ties break on the smaller node id.
package graph

import (
	"fmt"
	"sort"
)

// Digraph is a directed graph over uint64 node ids. The zero value is an
// empty graph ready to use.
type Digraph struct {
	nodes map[uint64]struct{}
	succ  map[uint64][]uint64
	pred  map[uint64][]uint64
	order []uint64 // node insertion order, for deterministic iteration
}

// New returns an empty directed graph.
func New() *Digraph {
	return &Digraph{
		nodes: make(map[uint64]struct{}),
		succ:  make(map[uint64][]uint64),
		pred:  make(map[uint64][]uint64),
	}
}

// AddNode inserts a node; inserting an existing node is a no-op.
func (g *Digraph) AddNode(n uint64) {
	if _, ok := g.nodes[n]; ok {
		return
	}
	g.nodes[n] = struct{}{}
	g.order = append(g.order, n)
}

// AddEdge inserts the directed edge from -> to, adding missing endpoints.
// Duplicate edges are ignored.
func (g *Digraph) AddEdge(from, to uint64) {
	g.AddNode(from)
	g.AddNode(to)
	for _, s := range g.succ[from] {
		if s == to {
			return
		}
	}
	g.succ[from] = append(g.succ[from], to)
	g.pred[to] = append(g.pred[to], from)
}

// RemoveEdge deletes the directed edge from -> to if present.
func (g *Digraph) RemoveEdge(from, to uint64) {
	g.succ[from] = removeOne(g.succ[from], to)
	g.pred[to] = removeOne(g.pred[to], from)
}

func removeOne(s []uint64, v uint64) []uint64 {
	for i, x := range s {
		if x == v {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// HasNode reports whether n is in the graph.
func (g *Digraph) HasNode(n uint64) bool {
	_, ok := g.nodes[n]
	return ok
}

// HasEdge reports whether the edge from -> to exists.
func (g *Digraph) HasEdge(from, to uint64) bool {
	for _, s := range g.succ[from] {
		if s == to {
			return true
		}
	}
	return false
}

// Succs returns the successor list of n (do not mutate).
func (g *Digraph) Succs(n uint64) []uint64 { return g.succ[n] }

// Preds returns the predecessor list of n (do not mutate).
func (g *Digraph) Preds(n uint64) []uint64 { return g.pred[n] }

// Nodes returns all node ids in insertion order.
func (g *Digraph) Nodes() []uint64 {
	out := make([]uint64, len(g.order))
	copy(out, g.order)
	return out
}

// NumNodes returns the node count.
func (g *Digraph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the edge count.
func (g *Digraph) NumEdges() int {
	n := 0
	for _, s := range g.succ {
		n += len(s)
	}
	return n
}

// Edge is a directed edge.
type Edge struct{ From, To uint64 }

// Edges returns every edge, ordered by (From, To) for determinism.
func (g *Digraph) Edges() []Edge {
	var out []Edge
	for _, from := range g.order {
		for _, to := range g.succ[from] {
			out = append(out, Edge{from, to})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Clone returns a deep copy of the graph.
func (g *Digraph) Clone() *Digraph {
	c := New()
	for _, n := range g.order {
		c.AddNode(n)
	}
	for _, from := range g.order {
		for _, to := range g.succ[from] {
			c.AddEdge(from, to)
		}
	}
	return c
}

// String summarizes the graph for debugging.
func (g *Digraph) String() string {
	return fmt.Sprintf("digraph{%d nodes, %d edges}", g.NumNodes(), g.NumEdges())
}

// BackEdges returns the back edges discovered by a DFS from root
// (edges into a node currently on the DFS stack). Nodes unreachable from
// root are then explored from the remaining nodes in insertion order, so
// every edge of the graph is classified. This is the cycle-elimination
// step of Algorithm 1 line 1.
func (g *Digraph) BackEdges(root uint64) []Edge {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[uint64]int, len(g.nodes))
	var back []Edge

	var dfs func(u uint64)
	dfs = func(u uint64) {
		color[u] = gray
		for _, v := range g.succ[u] {
			switch color[v] {
			case white:
				dfs(v)
			case gray:
				back = append(back, Edge{u, v})
			}
		}
		color[u] = black
	}

	if g.HasNode(root) {
		dfs(root)
	}
	for _, n := range g.order {
		if color[n] == white {
			dfs(n)
		}
	}
	sort.Slice(back, func(i, j int) bool {
		if back[i].From != back[j].From {
			return back[i].From < back[j].From
		}
		return back[i].To < back[j].To
	})
	return back
}

// RemoveBackEdges returns a copy of g with every DFS back edge (rooted at
// root) removed. The result is acyclic.
func (g *Digraph) RemoveBackEdges(root uint64) *Digraph {
	c := g.Clone()
	for _, e := range g.BackEdges(root) {
		c.RemoveEdge(e.From, e.To)
	}
	return c
}

// IsAcyclic reports whether the graph has no directed cycle.
func (g *Digraph) IsAcyclic() bool {
	indeg := make(map[uint64]int, len(g.nodes))
	for _, n := range g.order {
		indeg[n] = len(g.pred[n])
	}
	queue := make([]uint64, 0, len(g.nodes))
	for _, n := range g.order {
		if indeg[n] == 0 {
			queue = append(queue, n)
		}
	}
	seen := 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		seen++
		for _, v := range g.succ[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	return seen == len(g.nodes)
}

// Reachable returns the set of nodes reachable from start (including
// start itself when present in the graph).
func (g *Digraph) Reachable(start uint64) map[uint64]bool {
	out := make(map[uint64]bool)
	if !g.HasNode(start) {
		return out
	}
	stack := []uint64{start}
	out[start] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.succ[u] {
			if !out[v] {
				out[v] = true
				stack = append(stack, v)
			}
		}
	}
	return out
}

// SimplePaths enumerates every simple path from src to dst whose interior
// nodes avoid the excluded set (src and dst themselves may be in it).
// Paths include both endpoints. maxPaths bounds the enumeration (0 means
// unlimited); maxLen bounds path length in nodes (0 means unlimited).
// On an acyclic graph the enumeration always terminates; the bounds
// guard against combinatorial blowups on dense graphs.
//
// This implements the P_{i,j} computation of Algorithm 1 line 4: "all the
// paths between v_i and v_j in the CFG that do not go through any other
// attack-relevant BB".
func (g *Digraph) SimplePaths(src, dst uint64, excluded map[uint64]bool, maxPaths, maxLen int) [][]uint64 {
	var out [][]uint64
	if !g.HasNode(src) || !g.HasNode(dst) {
		return out
	}
	onPath := map[uint64]bool{src: true}
	path := []uint64{src}
	var walk func(u uint64) bool // returns false when the paths budget is spent
	walk = func(u uint64) bool {
		if maxLen > 0 && len(path) > maxLen {
			return true
		}
		for _, v := range g.succ[u] {
			if v == dst {
				if len(path) >= 1 && (u != src || v != src) {
					p := make([]uint64, len(path)+1)
					copy(p, path)
					p[len(path)] = v
					out = append(out, p)
					if maxPaths > 0 && len(out) >= maxPaths {
						return false
					}
				}
				continue
			}
			if onPath[v] || excluded[v] {
				continue
			}
			onPath[v] = true
			path = append(path, v)
			ok := walk(v)
			path = path[:len(path)-1]
			delete(onPath, v)
			if !ok {
				return false
			}
		}
		return true
	}
	walk(src)
	return out
}
