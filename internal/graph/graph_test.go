package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddNodeEdge(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(1, 2) // duplicate ignored
	g.AddEdge(2, 3)
	g.AddNode(3) // existing node ignored
	g.AddNode(9)
	if g.NumNodes() != 4 {
		t.Errorf("nodes = %d, want 4", g.NumNodes())
	}
	if g.NumEdges() != 2 {
		t.Errorf("edges = %d, want 2", g.NumEdges())
	}
	if !g.HasEdge(1, 2) || g.HasEdge(2, 1) {
		t.Error("HasEdge wrong")
	}
	if !g.HasNode(9) || g.HasNode(10) {
		t.Error("HasNode wrong")
	}
	if got := g.Succs(1); len(got) != 1 || got[0] != 2 {
		t.Errorf("Succs(1) = %v", got)
	}
	if got := g.Preds(3); len(got) != 1 || got[0] != 2 {
		t.Errorf("Preds(3) = %v", got)
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	g.RemoveEdge(1, 2)
	if g.HasEdge(1, 2) || !g.HasEdge(1, 3) {
		t.Error("RemoveEdge wrong")
	}
	g.RemoveEdge(7, 8) // removing a missing edge is a no-op
	if g.NumEdges() != 1 {
		t.Errorf("edges = %d", g.NumEdges())
	}
	if len(g.Preds(2)) != 0 {
		t.Error("pred list not updated")
	}
}

func TestEdgesDeterministic(t *testing.T) {
	g := New()
	g.AddEdge(5, 1)
	g.AddEdge(2, 9)
	g.AddEdge(2, 3)
	es := g.Edges()
	want := []Edge{{2, 3}, {2, 9}, {5, 1}}
	if len(es) != len(want) {
		t.Fatalf("edges = %v", es)
	}
	for i := range want {
		if es[i] != want[i] {
			t.Errorf("edge[%d] = %v, want %v", i, es[i], want[i])
		}
	}
}

func TestClone(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	c := g.Clone()
	c.AddEdge(2, 3)
	if g.HasNode(3) {
		t.Error("clone leaked into original")
	}
	if !c.HasEdge(1, 2) {
		t.Error("clone missing edge")
	}
}

func TestBackEdgesSimpleLoop(t *testing.T) {
	// a -> b -> c -> d -> a  (paper Fig 3: back edge d->a removed)
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 1)
	back := g.BackEdges(1)
	if len(back) != 1 || back[0] != (Edge{4, 1}) {
		t.Errorf("back edges = %v, want [{4 1}]", back)
	}
	acyc := g.RemoveBackEdges(1)
	if !acyc.IsAcyclic() {
		t.Error("RemoveBackEdges left a cycle")
	}
	if acyc.NumEdges() != 3 {
		t.Errorf("edges after removal = %d", acyc.NumEdges())
	}
}

func TestBackEdgesNestedLoops(t *testing.T) {
	// outer: 1->2->3->4->1 ; inner: 2->3->2 ; plus exit 4->5
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 2)
	g.AddEdge(3, 4)
	g.AddEdge(4, 1)
	g.AddEdge(4, 5)
	acyc := g.RemoveBackEdges(1)
	if !acyc.IsAcyclic() {
		t.Error("nested loops not broken")
	}
	// Forward structure must be intact.
	for _, e := range []Edge{{1, 2}, {2, 3}, {3, 4}, {4, 5}} {
		if !acyc.HasEdge(e.From, e.To) {
			t.Errorf("forward edge %v lost", e)
		}
	}
}

func TestBackEdgesUnreachableComponent(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	// Disconnected cycle 10->11->10 must still be classified.
	g.AddEdge(10, 11)
	g.AddEdge(11, 10)
	acyc := g.RemoveBackEdges(1)
	if !acyc.IsAcyclic() {
		t.Error("unreachable cycle not broken")
	}
}

func TestIsAcyclic(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	if !g.IsAcyclic() {
		t.Error("chain reported cyclic")
	}
	g.AddEdge(3, 1)
	if g.IsAcyclic() {
		t.Error("cycle reported acyclic")
	}
	if !New().IsAcyclic() {
		t.Error("empty graph should be acyclic")
	}
}

func TestReachable(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddNode(4)
	r := g.Reachable(1)
	if !r[1] || !r[2] || !r[3] || r[4] {
		t.Errorf("reachable = %v", r)
	}
	if len(g.Reachable(99)) != 0 {
		t.Error("reachable from missing node should be empty")
	}
}

// Property: RemoveBackEdges always yields an acyclic graph on random
// graphs, and never invents edges.
func TestRemoveBackEdgesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		n := 2 + rng.Intn(20)
		for i := 0; i < n*2; i++ {
			g.AddEdge(uint64(rng.Intn(n)), uint64(rng.Intn(n)))
		}
		acyc := g.RemoveBackEdges(0)
		if !acyc.IsAcyclic() {
			return false
		}
		for _, e := range acyc.Edges() {
			if !g.HasEdge(e.From, e.To) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSimplePathsFig3(t *testing.T) {
	// Paper Fig 3(c): a=1,b=2,c=3,d=4,e=5 with edges a->b,b->c,a->c,c->d,b->e
	// after back-edge removal. Relevant nodes {a,c,e}. Paths a..c avoiding
	// other relevant nodes: a->b->c and a->c.
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(1, 3)
	g.AddEdge(3, 4)
	g.AddEdge(2, 5)
	excl := map[uint64]bool{1: true, 3: true, 5: true}
	paths := g.SimplePaths(1, 3, excl, 0, 0)
	if len(paths) != 2 {
		t.Fatalf("paths = %v, want 2", paths)
	}
	// a->e avoiding c: a->b->e only.
	paths2 := g.SimplePaths(1, 5, excl, 0, 0)
	if len(paths2) != 1 || len(paths2[0]) != 3 {
		t.Fatalf("paths a..e = %v", paths2)
	}
	// c->e: none (no edge from c to e side without going back).
	if got := g.SimplePaths(3, 5, excl, 0, 0); len(got) != 0 {
		t.Errorf("paths c..e = %v, want none", got)
	}
}

func TestSimplePathsEndpointsMayBeExcluded(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	excl := map[uint64]bool{1: true, 3: true}
	paths := g.SimplePaths(1, 3, excl, 0, 0)
	if len(paths) != 1 {
		t.Fatalf("paths = %v", paths)
	}
}

func TestSimplePathsDirectEdge(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	paths := g.SimplePaths(1, 2, nil, 0, 0)
	if len(paths) != 1 || len(paths[0]) != 2 {
		t.Fatalf("paths = %v", paths)
	}
}

func TestSimplePathsBounds(t *testing.T) {
	// Diamond ladder with 2^k paths; check maxPaths truncation.
	g := New()
	id := uint64(0)
	cur := id
	for i := 0; i < 8; i++ {
		a, b, next := id+1, id+2, id+3
		g.AddEdge(cur, a)
		g.AddEdge(cur, b)
		g.AddEdge(a, next)
		g.AddEdge(b, next)
		cur, id = next, next
	}
	all := g.SimplePaths(0, cur, nil, 0, 0)
	if len(all) != 256 {
		t.Fatalf("paths = %d, want 256", len(all))
	}
	capped := g.SimplePaths(0, cur, nil, 10, 0)
	if len(capped) != 10 {
		t.Fatalf("capped paths = %d, want 10", len(capped))
	}
	short := g.SimplePaths(0, cur, nil, 0, 3)
	if len(short) != 0 {
		t.Fatalf("maxLen=3 should find nothing, got %d", len(short))
	}
}

func TestSimplePathsMissingNodes(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	if got := g.SimplePaths(1, 99, nil, 0, 0); len(got) != 0 {
		t.Error("path to missing node")
	}
	if got := g.SimplePaths(99, 1, nil, 0, 0); len(got) != 0 {
		t.Error("path from missing node")
	}
}

func TestMSTLine(t *testing.T) {
	nodes := []uint64{1, 2, 3}
	edges := []WEdge{
		{From: 1, To: 2, Weight: 5, Path: []uint64{1, 2}},
		{From: 2, To: 3, Weight: 3, Path: []uint64{2, 3}},
		{From: 1, To: 3, Weight: 1, Path: []uint64{1, 9, 3}},
	}
	mst := MaximumSpanningForest(nodes, edges)
	if len(mst) != 2 {
		t.Fatalf("mst = %v", mst)
	}
	if TotalWeight(mst) != 8 {
		t.Errorf("weight = %v, want 8", TotalWeight(mst))
	}
}

func TestMSTPicksHeaviestParallelEdge(t *testing.T) {
	nodes := []uint64{1, 2}
	edges := []WEdge{
		{From: 1, To: 2, Weight: 1, Path: []uint64{1, 7, 2}},
		{From: 1, To: 2, Weight: 9, Path: []uint64{1, 2}},
	}
	mst := MaximumSpanningForest(nodes, edges)
	if len(mst) != 1 || mst[0].Weight != 9 {
		t.Fatalf("mst = %v", mst)
	}
}

func TestMSTForestOnDisconnected(t *testing.T) {
	nodes := []uint64{1, 2, 10, 11}
	edges := []WEdge{
		{From: 1, To: 2, Weight: 1},
		{From: 10, To: 11, Weight: 2},
	}
	mst := MaximumSpanningForest(nodes, edges)
	if len(mst) != 2 {
		t.Fatalf("forest = %v", mst)
	}
}

func TestMSTIgnoresSelfLoopsAndForeignEdges(t *testing.T) {
	nodes := []uint64{1, 2}
	edges := []WEdge{
		{From: 1, To: 1, Weight: 100},
		{From: 5, To: 6, Weight: 100},
		{From: 1, To: 2, Weight: 1},
	}
	mst := MaximumSpanningForest(nodes, edges)
	if len(mst) != 1 || mst[0].From != 1 || mst[0].To != 2 {
		t.Fatalf("mst = %v", mst)
	}
}

func TestMSTEmpty(t *testing.T) {
	if got := MaximumSpanningForest(nil, nil); got != nil {
		t.Errorf("empty = %v", got)
	}
	if got := MaximumSpanningForest([]uint64{7}, nil); len(got) != 0 {
		t.Errorf("singleton = %v", got)
	}
}

// Property: the spanning forest has exactly nodes-components edges, never
// exceeds the densest possible weight, and contains no cycle.
func TestMSTProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		nodes := make([]uint64, n)
		for i := range nodes {
			nodes[i] = uint64(i)
		}
		var edges []WEdge
		for i := 0; i < n*3; i++ {
			a, b := uint64(rng.Intn(n)), uint64(rng.Intn(n))
			edges = append(edges, WEdge{From: a, To: b, Weight: float64(rng.Intn(50))})
		}
		mst := MaximumSpanningForest(nodes, edges)
		// Count components of the undirected edge set.
		parent := make([]int, n)
		for i := range parent {
			parent[i] = i
		}
		var find func(int) int
		find = func(x int) int {
			for parent[x] != x {
				parent[x] = parent[parent[x]]
				x = parent[x]
			}
			return x
		}
		union := func(a, b int) bool {
			ra, rb := find(a), find(b)
			if ra == rb {
				return false
			}
			parent[ra] = rb
			return true
		}
		for _, e := range edges {
			if e.From != e.To {
				union(int(e.From), int(e.To))
			}
		}
		comps := 0
		for i := range parent {
			if find(i) == i {
				comps++
			}
		}
		if len(mst) != n-comps {
			return false
		}
		// MST edges must be acyclic (union never sees a duplicate root).
		for i := range parent {
			parent[i] = i
		}
		for _, e := range mst {
			if !union(int(e.From), int(e.To)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Prim's result weight matches Kruskal's on random graphs.
func TestMSTMatchesKruskal(t *testing.T) {
	kruskal := func(n int, edges []WEdge) float64 {
		parent := make([]int, n)
		for i := range parent {
			parent[i] = i
		}
		var find func(int) int
		find = func(x int) int {
			for parent[x] != x {
				parent[x] = parent[parent[x]]
				x = parent[x]
			}
			return x
		}
		// Sort by descending weight.
		es := append([]WEdge(nil), edges...)
		for i := 0; i < len(es); i++ {
			for j := i + 1; j < len(es); j++ {
				if es[j].Weight > es[i].Weight {
					es[i], es[j] = es[j], es[i]
				}
			}
		}
		total := 0.0
		for _, e := range es {
			if e.From == e.To {
				continue
			}
			ra, rb := find(int(e.From)), find(int(e.To))
			if ra != rb {
				parent[ra] = rb
				total += e.Weight
			}
		}
		return total
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		nodes := make([]uint64, n)
		for i := range nodes {
			nodes[i] = uint64(i)
		}
		var edges []WEdge
		for i := 0; i < n*4; i++ {
			edges = append(edges, WEdge{
				From:   uint64(rng.Intn(n)),
				To:     uint64(rng.Intn(n)),
				Weight: float64(rng.Intn(30)),
			})
		}
		return TotalWeight(MaximumSpanningForest(nodes, edges)) == kruskal(n, edges)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
