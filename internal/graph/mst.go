package graph

import "sort"

// WEdge is a weighted, labeled edge of the path graph G' built by
// Algorithm 1: an edge between two attack-relevant basic blocks whose
// label is the underlying CFG path and whose weight is the path's attack
// correlation value V_p.
type WEdge struct {
	From, To uint64
	Weight   float64
	// Path is the underlying CFG path, including both endpoints.
	Path []uint64
}

// MaximumSpanningForest runs Prim's algorithm over the undirected view of
// the weighted edges and returns, for every connected component, the set
// of chosen edges. Together the returned edges form a maximum spanning
// forest: within each component the total weight is maximal.
//
// When several parallel edges connect the same pair of nodes the heaviest
// is considered first; ties break deterministically on (From, To) order
// and then on shorter path, so repeated runs pick identical trees.
func MaximumSpanningForest(nodes []uint64, edges []WEdge) []WEdge {
	if len(nodes) == 0 {
		return nil
	}
	// adj[u] lists candidate edges touching u.
	adj := make(map[uint64][]WEdge, len(nodes))
	nodeSet := make(map[uint64]bool, len(nodes))
	for _, n := range nodes {
		nodeSet[n] = true
	}
	for _, e := range edges {
		if !nodeSet[e.From] || !nodeSet[e.To] {
			continue // ignore edges outside the node set
		}
		if e.From == e.To {
			continue // self loops never enter a spanning tree
		}
		adj[e.From] = append(adj[e.From], e)
		adj[e.To] = append(adj[e.To], e)
	}
	// Deterministic candidate ordering.
	better := func(a, b WEdge) bool {
		if a.Weight != b.Weight {
			return a.Weight > b.Weight
		}
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return len(a.Path) < len(b.Path)
	}
	for u := range adj {
		es := adj[u]
		sort.Slice(es, func(i, j int) bool { return better(es[i], es[j]) })
	}

	inTree := make(map[uint64]bool, len(nodes))
	var chosen []WEdge

	// Sorted roots for deterministic component order.
	roots := make([]uint64, len(nodes))
	copy(roots, nodes)
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })

	for _, root := range roots {
		if inTree[root] {
			continue
		}
		inTree[root] = true
		// frontier: candidate edges with exactly one endpoint in the tree.
		frontier := append([]WEdge(nil), adj[root]...)
		for len(frontier) > 0 {
			// Pick the best frontier edge that still crosses the cut.
			bestIdx := -1
			for i, e := range frontier {
				if inTree[e.From] == inTree[e.To] {
					continue // both in or both out: not usable now
				}
				if bestIdx < 0 || better(e, frontier[bestIdx]) {
					bestIdx = i
				}
			}
			if bestIdx < 0 {
				break
			}
			e := frontier[bestIdx]
			frontier = append(frontier[:bestIdx], frontier[bestIdx+1:]...)
			newNode := e.To
			if inTree[newNode] {
				newNode = e.From
			}
			inTree[newNode] = true
			chosen = append(chosen, e)
			frontier = append(frontier, adj[newNode]...)
			// Drop edges fully inside the tree to keep the frontier small.
			kept := frontier[:0]
			for _, f := range frontier {
				if inTree[f.From] != inTree[f.To] {
					kept = append(kept, f)
				}
			}
			frontier = kept
		}
	}
	sort.Slice(chosen, func(i, j int) bool {
		if chosen[i].From != chosen[j].From {
			return chosen[i].From < chosen[j].From
		}
		return chosen[i].To < chosen[j].To
	})
	return chosen
}

// TotalWeight sums edge weights; a convenience for tests and ablations.
func TotalWeight(edges []WEdge) float64 {
	t := 0.0
	for _, e := range edges {
		t += e.Weight
	}
	return t
}
