package scaguard

import (
	"bytes"
	"os"
	"testing"
)

// sharedDetector caches the default detector across tests (repository
// construction runs four full simulations).
var sharedDetector *Detector

func detector(t *testing.T) *Detector {
	t.Helper()
	if sharedDetector == nil {
		d, err := NewDetector()
		if err != nil {
			t.Fatal(err)
		}
		sharedDetector = d
	}
	return sharedDetector
}

func TestFacadeEndToEnd(t *testing.T) {
	d := detector(t)
	// An attack variant the repository has never seen.
	poc := MustAttack("FR-Nepoche")
	res, m, err := d.Classify(poc.Program, poc.Victim)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil || m.BBS.Len() == 0 {
		t.Fatal("no model built")
	}
	if res.Predicted != FamilyFlushReload {
		t.Errorf("FR-Nepoche classified as %s", res.Predicted)
	}
	// A benign program.
	prog, err := GenerateBenign("leetcode", "kadane", 3)
	if err != nil {
		t.Fatal(err)
	}
	res2, _, err := d.Classify(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Predicted != FamilyBenign {
		t.Errorf("kadane classified as %s (%.2f)", res2.Predicted, res2.Best.Score)
	}
}

func TestFacadeBuildModelAndScore(t *testing.T) {
	a := MustAttack("FR-IAIK")
	b := MustAttack("ER-IAIK")
	ma, err := BuildModel(a.Program, a.Victim)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := BuildModel(b.Program, b.Victim)
	if err != nil {
		t.Fatal(err)
	}
	s := Score(ma.BBS, mb.BBS)
	if s < DefaultThreshold {
		t.Errorf("FR vs ER score %.2f below threshold", s)
	}
	if self := Score(ma.BBS, ma.BBS); self != 1 {
		t.Errorf("self score = %v", self)
	}
}

func TestFacadeCatalogs(t *testing.T) {
	if len(AttackNames()) != 11 {
		t.Errorf("attack names = %v", AttackNames())
	}
	if len(Families()) != 4 {
		t.Error("four families expected")
	}
	if len(BenignKinds()) != 4 {
		t.Error("four benign kinds expected")
	}
	if len(BenignTemplates("crypto")) == 0 {
		t.Error("crypto templates missing")
	}
	if _, err := Attack("nope"); err == nil {
		t.Error("unknown attack must fail")
	}
	if _, err := GenerateBenign("nope", "x", 1); err == nil {
		t.Error("unknown benign kind must fail")
	}
}

func TestFacadeVariants(t *testing.T) {
	poc := MustAttack("PP-IAIK")
	mut, err := MutateVariant(poc.Program, 5)
	if err != nil {
		t.Fatal(err)
	}
	obf, err := ObfuscateVariant(poc.Program, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(obf.Insns) <= len(mut.Insns) {
		t.Error("obfuscation should grow the program more than light mutation")
	}
	// The obfuscated variant is still detected.
	d := detector(t)
	res, _, err := d.Classify(obf, poc.Victim)
	if err != nil {
		t.Fatal(err)
	}
	if res.Predicted == FamilyBenign {
		t.Errorf("obfuscated PP classified benign (%.2f)", res.Best.Score)
	}
}

func TestFacadeDataset(t *testing.T) {
	ds, err := StandardDataset(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 15 {
		t.Errorf("dataset size = %d", ds.Len())
	}
}

func TestFacadeRandomBenign(t *testing.T) {
	p, err := RandomBenign("server", 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}

func TestNewDetectorFromPoCs(t *testing.T) {
	d, err := NewDetectorFromPoCs([]PoC{MustAttack("FF-IAIK")})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Repo.Entries) != 1 {
		t.Error("repository size wrong")
	}
}

// A user-authored assembly program goes through the full pipeline: a
// hand-written Flush+Reload in text form classifies as FR-F; a
// hand-written compute kernel stays benign.
func TestParseProgramEndToEnd(t *testing.T) {
	src := `
	; hand-written flush+reload against a shared library page
	.data shared 1024 shared @0x20000000
	.data hits 128

	  mov r7, 4          ; rounds
	round:
	  mov r2, 0          ; line index
	lines:
	  mov r1, r2
	  shl r1, 6
	  add r1, $shared
	  clflush [r1]
	  mov r3, 30
	wait:
	  dec r3
	  jne wait
	  rdtscp r4
	  mov r0, [r1]
	  rdtscp r5
	  sub r5, r4
	  cmp r5, 100
	  jae miss
	  lea r6, [hits+r2*8]
	  mov r8, [r6]
	  inc r8
	  mov [r6], r8
	miss:
	  inc r2
	  cmp r2, 12
	  jl lines
	  dec r7
	  jne round
	  hlt
	`
	prog, err := ParseProgram("hand-fr", src)
	if err != nil {
		t.Fatal(err)
	}
	d := detector(t)
	victim := MustAttack("FR-IAIK").Victim // standard shared-memory victim
	res, _, err := d.Classify(prog, victim)
	if err != nil {
		t.Fatal(err)
	}
	if res.Predicted != FamilyFlushReload {
		t.Errorf("hand-written FR classified %s (best %s %.2f)",
			res.Predicted, res.Best.Name, res.Best.Score)
	}

	benignSrc := `
	.data buf 512
	  mov r0, 0
	  mov r1, 0
	sum:
	  mov r2, [buf+r1*8]
	  add r0, r2
	  inc r1
	  cmp r1, 64
	  jl sum
	  hlt
	`
	bp, err := ParseProgram("hand-benign", benignSrc)
	if err != nil {
		t.Fatal(err)
	}
	res2, _, err := d.Classify(bp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Predicted != FamilyBenign {
		t.Errorf("hand-written kernel classified %s", res2.Predicted)
	}
}

func TestFacadeRepositoryPersistence(t *testing.T) {
	d := detector(t)
	var buf bytes.Buffer
	if err := SaveRepository(d.Repo, &buf); err != nil {
		t.Fatal(err)
	}
	repo, err := LoadRepository(&buf)
	if err != nil {
		t.Fatal(err)
	}
	d2 := NewDetectorFromRepository(repo)
	poc := MustAttack("FF-IAIK")
	res, _, err := d2.Classify(poc.Program, poc.Victim)
	if err != nil {
		t.Fatal(err)
	}
	if res.Predicted != FamilyFlushReload {
		t.Errorf("loaded repo classifies FF as %s", res.Predicted)
	}
}

func TestMustAttackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAttack must panic on unknown names")
		}
	}()
	MustAttack("definitely-not-a-poc")
}

// The shipped sample programs must keep assembling and classifying as
// documented in their comments.
func TestShippedTestdata(t *testing.T) {
	d := detector(t)
	cases := []struct {
		file string
		want Family
	}{
		{"testdata/handwritten-fr.s", FamilyFlushReload},
		{"testdata/handwritten-benign.s", FamilyBenign},
	}
	for _, c := range cases {
		src, err := os.ReadFile(c.file)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := ParseProgram(c.file, string(src))
		if err != nil {
			t.Fatalf("%s: %v", c.file, err)
		}
		var victim *Program
		if c.want != FamilyBenign {
			victim = MustAttack("FR-IAIK").Victim
		}
		res, _, err := d.Classify(prog, victim)
		if err != nil {
			t.Fatal(err)
		}
		if res.Predicted != c.want {
			t.Errorf("%s: classified %s, want %s", c.file, res.Predicted, c.want)
		}
	}
}
