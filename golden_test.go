package scaguard

// The golden corpus test pins the end-to-end verdict of every program
// in the repository's example corpus — canonical and extension attack
// PoCs, the hand-written testdata programs and one benign sample per
// Table-III kind — against the built-in detector. Any change to
// modeling, similarity or scanning that shifts a family verdict or a
// best score shows up as a diff against testdata/golden_verdicts.json.
//
// Regenerate after an intentional pipeline change with:
//
//	go test -run Golden -update .

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_verdicts.json from the current pipeline")

const goldenPath = "testdata/golden_verdicts.json"

// goldenVerdict is one classification outcome, scored against the
// built-in repository with default (exact) settings.
type goldenVerdict struct {
	Target   string  `json:"target"`
	Family   string  `json:"family"`
	Best     string  `json:"best"`
	Score    float64 `json:"score"`
	ModelLen int     `json:"model_len"`
}

type goldenTarget struct {
	name   string
	prog   *Program
	victim *Program
}

func goldenCorpus(t *testing.T) []goldenTarget {
	t.Helper()
	var targets []goldenTarget
	for _, name := range append(AttackNames(), ExtensionNames()...) {
		poc := MustAttack(name)
		targets = append(targets, goldenTarget{name: "attack:" + name, prog: poc.Program, victim: poc.Victim})
	}
	files, err := filepath.Glob(filepath.Join("testdata", "*.s"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(files)
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := ParseProgram(filepath.Base(f), string(src))
		if err != nil {
			t.Fatalf("parse %s: %v", f, err)
		}
		targets = append(targets, goldenTarget{name: "file:" + filepath.Base(f), prog: prog})
	}
	for _, kind := range BenignKinds() {
		tmpls := BenignTemplates(kind)
		if len(tmpls) == 0 {
			continue
		}
		sort.Strings(tmpls)
		prog, err := GenerateBenign(kind, tmpls[0], 1)
		if err != nil {
			t.Fatalf("benign %s/%s: %v", kind, tmpls[0], err)
		}
		targets = append(targets, goldenTarget{name: "benign:" + kind + "/" + tmpls[0] + "/1", prog: prog})
	}
	return targets
}

func TestGoldenVerdicts(t *testing.T) {
	det, err := NewDetector()
	if err != nil {
		t.Fatal(err)
	}
	var got []goldenVerdict
	for _, tgt := range goldenCorpus(t) {
		res, m, err := det.Classify(tgt.prog, tgt.victim)
		if err != nil {
			t.Fatalf("classify %s: %v", tgt.name, err)
		}
		got = append(got, goldenVerdict{
			Target:   tgt.name,
			Family:   string(res.Predicted),
			Best:     res.Best.Name,
			Score:    res.Best.Score,
			ModelLen: m.BBS.Len(),
		})
	}
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d verdicts to %s", len(got), goldenPath)
		return
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden file (regenerate with `go test -run Golden -update .`): %v", err)
	}
	var want []goldenVerdict
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	wantBy := make(map[string]goldenVerdict, len(want))
	for _, v := range want {
		wantBy[v.Target] = v
	}
	if len(got) != len(want) {
		t.Errorf("corpus size changed: got %d verdicts, golden has %d", len(got), len(want))
	}
	const scoreTol = 1e-9
	for _, g := range got {
		w, ok := wantBy[g.Target]
		if !ok {
			t.Errorf("%s: not in golden file (new corpus entry? regenerate with -update)", g.Target)
			continue
		}
		if g.Family != w.Family {
			t.Errorf("%s: family %q, golden %q", g.Target, g.Family, w.Family)
		}
		if g.Best != w.Best {
			t.Errorf("%s: best match %q, golden %q", g.Target, g.Best, w.Best)
		}
		if math.Abs(g.Score-w.Score) > scoreTol {
			t.Errorf("%s: score %.12f, golden %.12f", g.Target, g.Score, w.Score)
		}
		if g.ModelLen != w.ModelLen {
			t.Errorf("%s: model length %d, golden %d", g.Target, g.ModelLen, w.ModelLen)
		}
	}
}
