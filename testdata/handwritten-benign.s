; A hand-written benign kernel (array sum) in the reproduction's
; assembly syntax — the negative control for handwritten-fr.s:
;
;   go run ./cmd/scaguard classify -file testdata/handwritten-benign.s
.data buf 512

  mov r0, 0          ; sum
  mov r1, 0          ; index
sum:
  mov r2, [buf+r1*8]
  add r0, r2
  inc r1
  cmp r1, 64
  jl sum
  hlt
