; A minimal hand-written Flush+Reload attack in the reproduction's
; assembly syntax. Classify it with:
;
;   go run ./cmd/scaguard classify -file testdata/handwritten-fr.s
;
; (The CLI runs it without a victim; flush/reload behavior is still
; modeled and the detector recognizes the family.)
.data shared 1024 shared @0x20000000
.data hits 128

  mov r7, 4          ; monitoring rounds
round:
  mov r2, 0          ; line index
lines:
  mov r1, r2
  shl r1, 6
  add r1, $shared
  clflush [r1]       ; flush phase
  mov r3, 30
wait:
  dec r3
  jne wait
  rdtscp r4          ; timed reload phase
  mov r0, [r1]
  rdtscp r5
  sub r5, r4
  cmp r5, 100
  jae miss
  lea r6, [hits+r2*8]
  mov r8, [r6]
  inc r8
  mov [r6], r8
miss:
  inc r2
  cmp r2, 12
  jl lines
  dec r7
  jne round
  hlt
