package scaguard

// End-to-end differential for the repository-index mode over the full
// golden corpus: an index-guided detector — single-engine, sharded
// across several counts, and with the verdict result cache layered on —
// must agree with the plain exact detector on the verdict and the best
// match (bit-exact score) for every corpus program, cold and warm. Full
// match lists are not compared: members of skipped clusters
// legitimately report certified upper bounds, exactly like pruned
// entries in a flat early-abandoning scan.

import (
	"testing"

	"repro/internal/telemetry"
)

func TestGoldenVerdictsIndexed(t *testing.T) {
	ref, err := NewDetector()
	if err != nil {
		t.Fatal(err)
	}
	corpus := goldenCorpus(t)

	for _, shards := range []int{1, 2, 7} {
		det, err := NewDetector()
		if err != nil {
			t.Fatal(err)
		}
		det.Shards = shards
		det.ResultCache = 128
		det.Scan = ScanConfig{Prune: true, Index: true}
		tel := NewTelemetry()
		det.Telemetry = tel

		check := func(pass string) {
			for _, tgt := range corpus {
				want, _, err := ref.Classify(tgt.prog, tgt.victim)
				if err != nil {
					t.Fatalf("reference classify %s: %v", tgt.name, err)
				}
				got, _, err := det.Classify(tgt.prog, tgt.victim)
				if err != nil {
					t.Fatalf("shards=%d %s classify %s: %v", shards, pass, tgt.name, err)
				}
				if got.Predicted != want.Predicted {
					t.Fatalf("shards=%d %s %s: predicted %q, exact %q", shards, pass, tgt.name, got.Predicted, want.Predicted)
				}
				if got.Best.Name != want.Best.Name || got.Best.Score != want.Best.Score {
					t.Fatalf("shards=%d %s %s: best (%q, %v), exact (%q, %v)",
						shards, pass, tgt.name, got.Best.Name, got.Best.Score, want.Best.Name, want.Best.Score)
				}
				if got.Best.Pruned {
					t.Fatalf("shards=%d %s %s: best match reported pruned", shards, pass, tgt.name)
				}
			}
		}

		check("cold")
		scansCold := tel.Counter(telemetry.ScanTargets)
		check("warm")
		if scans := tel.Counter(telemetry.ScanTargets); scans != scansCold {
			t.Errorf("shards=%d: warm pass scanned: scan_targets %d -> %d, want frozen (vcache miss)", shards, scansCold, scans)
		}
		if tel.Counter(telemetry.IndexRebuilds) == 0 {
			t.Errorf("shards=%d: no index was ever built", shards)
		}
		if shards == 1 && tel.Counter(telemetry.IndexClustersDescended) == 0 {
			t.Error("indexed scans never descended into a cluster over the golden corpus")
		}
	}
}
